package fleet

import (
	"fmt"
	"testing"

	"sentinel/internal/fingerprint"
)

func allEligible(int) bool { return true }

// testKeys returns n distinct fingerprints (raw-request keys over distinct
// bodies — uniform, deterministic).
func testKeys(n int) []fingerprint.Key {
	keys := make([]fingerprint.Key, n)
	for i := range keys {
		keys[i] = fingerprint.RawRequest("/v1/simulate", "", []byte(fmt.Sprintf("key-%d", i)))
	}
	return keys
}

// TestRingDeterministic: placement depends only on the configured address
// strings, so two rings over the same list agree on every key — the
// property that lets any number of router instances front one fleet.
func TestRingDeterministic(t *testing.T) {
	addrs := []string{"a:1", "b:2", "c:3"}
	r1, r2 := newRing(addrs, 64), newRing(addrs, 64)
	for _, k := range testKeys(256) {
		h := ringHash(k)
		if got, want := r1.pick(h, -1, allEligible), r2.pick(h, -1, allEligible); got != want {
			t.Fatalf("rings over identical addrs disagree: %d vs %d", got, want)
		}
	}
}

// TestRingEligibilityAtLookup: removing a backend moves only its keys (to
// their ring successors), and restoring it returns exactly the old
// placement — membership changes never rebuild the ring.
func TestRingEligibilityAtLookup(t *testing.T) {
	r := newRing([]string{"a:1", "b:2", "c:3"}, 64)
	keys := testKeys(512)
	owners := make([]int, len(keys))
	for i, k := range keys {
		owners[i] = r.pick(ringHash(k), -1, allEligible)
		if owners[i] < 0 {
			t.Fatalf("no owner for key %d with all eligible", i)
		}
	}
	const down = 1
	up := func(i int) bool { return i != down }
	for i, k := range keys {
		got := r.pick(ringHash(k), -1, up)
		if got == down {
			t.Fatalf("key %d routed to ineligible backend %d", i, down)
		}
		if owners[i] != down && got != owners[i] {
			t.Fatalf("key %d moved %d -> %d though its owner stayed eligible", i, owners[i], got)
		}
		// The displaced keys land on the successor — which is what pick with
		// skip=owner computes.
		if owners[i] == down {
			if want := r.pick(ringHash(k), down, allEligible); got != want {
				t.Fatalf("key %d rerouted to %d, want ring successor %d", i, got, want)
			}
		}
		// Recovery: the old owner gets its exact keyspace back.
		if back := r.pick(ringHash(k), -1, allEligible); back != owners[i] {
			t.Fatalf("key %d did not return to owner %d after recovery (got %d)", i, owners[i], back)
		}
	}
}

// TestRingDistribution: with the default vnode count no backend owns a
// degenerate share of a uniform keyspace.
func TestRingDistribution(t *testing.T) {
	n := 4
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("backend-%d:8649", i)
	}
	r := newRing(addrs, 64)
	counts := make([]int, n)
	keys := testKeys(8000)
	for _, k := range keys {
		counts[r.pick(ringHash(k), -1, allEligible)]++
	}
	for i, c := range counts {
		share := float64(c) / float64(len(keys))
		if share < 0.10 || share > 0.45 {
			t.Errorf("backend %d owns %.1f%% of a uniform keyspace (counts %v)", i, 100*share, counts)
		}
	}
}

// TestRingNoEligible: pick degrades to -1, never loops or panics.
func TestRingNoEligible(t *testing.T) {
	r := newRing([]string{"a:1"}, 8)
	if got := r.pick(42, -1, func(int) bool { return false }); got != -1 {
		t.Fatalf("pick with nothing eligible = %d, want -1", got)
	}
	if got := r.pick(42, 0, allEligible); got != -1 {
		t.Fatalf("pick skipping the only backend = %d, want -1", got)
	}
}

// TestSketchEstimatesAndDecay: repeated touches of one key raise its
// estimate past any threshold while a fresh key stays near zero, and the
// decay window halves history so "hot" means hot recently.
func TestSketchEstimatesAndDecay(t *testing.T) {
	s := newSketch(0) // no decay for the counting half
	hot := fingerprint.RawRequest("/v1/simulate", "", []byte("hot"))
	var est uint32
	for i := 0; i < 100; i++ {
		est = s.touch(hot)
	}
	if est != 100 {
		t.Fatalf("estimate after 100 touches = %d, want 100 (min-of-rows cannot undercount a lone key)", est)
	}
	if cold := s.touch(fingerprint.RawRequest("/v1/simulate", "", []byte("cold"))); cold > 2 {
		t.Fatalf("cold key estimate = %d; collision across all 4 rows is wildly improbable", cold)
	}

	d := newSketch(64)
	for i := 0; i < 64; i++ {
		est = d.touch(hot)
	}
	// The 64th touch triggered the halving, so the next touch reads ~32.
	if next := d.touch(hot); next > 40 {
		t.Fatalf("estimate after decay window = %d, want roughly half of 64", next)
	}
}

// TestRouteAllocFree pins the fast path: fingerprint-to-backend routing
// (sketch touch + ring lookup) allocates nothing.
func TestRouteAllocFree(t *testing.T) {
	rt, err := New(Config{
		Backends:      []string{"a:1", "b:2", "c:3"},
		ProbeInterval: -1, // no prober; health is not under test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	keys := testKeys(64)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		rt.route(keys[i%len(keys)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("route allocates %.1f per op, want 0", allocs)
	}
}

// BenchmarkFleetRoute measures the routing decision itself — count-min
// touch, hot check, ring binary search — the per-request overhead the
// router adds before any proxying.
func BenchmarkFleetRoute(b *testing.B) {
	rt, err := New(Config{
		Backends:      []string{"a:1", "b:2", "c:3"},
		ProbeInterval: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	keys := testKeys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, _ := rt.route(keys[i&1023])
		if idx < 0 {
			b.Fatal("no backend")
		}
	}
}
