// Package fleet is the cluster layer over sentineld: a router that
// terminates both HTTP/JSON and the binary wire protocol, fingerprints each
// request with the same canonical serialization the backends key their
// response-byte caches with (internal/fingerprint), and consistent-hashes
// the fingerprint onto a ring of backends — so identical requests always
// land where their compile artifacts, singleflight entries and response
// bytes are already warm, making every per-process cache fleet-wide for
// free.
//
// Around the ring: active /readyz probing with drain-aware removal (a
// draining backend stops receiving new keys but finishes what it holds),
// one bounded retry onto the ring successor when a backend cannot be
// reached (every proxied op is idempotent — simulate, schedule and figures
// are pure functions of the request), and a count-min sketch that detects
// hot fingerprints and spills them round-robin across the whole fleet so
// one hot cell warms every backend's cache instead of serializing its
// owner.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// ringPoint is one virtual node: a position on the 64-bit hash circle owned
// by backend index idx.
type ringPoint struct {
	hash uint64
	idx  uint16
}

// ring is a consistent-hash ring over the backend set. The backend set is
// fixed at construction — membership changes are expressed through the
// eligibility predicate at lookup time, not by rebuilding the ring, so a
// backend that recovers gets its exact old keyspace back (and its still-warm
// caches with it).
type ring struct {
	points []ringPoint
}

// newRing builds the ring: vnodes virtual nodes per backend, each placed at
// sha256(addr + "#" + replica). Placement depends only on the configured
// address strings, so every router instance over the same backend list
// computes the same ring.
func newRing(addrs []string, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(addrs)*vnodes)}
	for i, addr := range addrs {
		for v := 0; v < vnodes; v++ {
			sum := sha256.Sum256([]byte(addr + "#" + strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{
				hash: binary.LittleEndian.Uint64(sum[:8]),
				idx:  uint16(i),
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// pick returns the first eligible backend at or clockwise from h, skipping
// backend `skip` (pass -1 to skip none) — so pick(h, owner, eligible) is the
// retry successor: the next distinct backend that would inherit h's keyspace
// if the owner left the ring. Returns -1 when no backend qualifies.
// Allocation-free: the walk visits at most every virtual node once.
func (r *ring) pick(h uint64, skip int, eligible func(int) bool) int {
	n := len(r.points)
	if n == 0 {
		return -1
	}
	i := sort.Search(n, func(j int) bool { return r.points[j].hash >= h })
	for k := 0; k < n; k++ {
		p := r.points[(i+k)%n]
		if int(p.idx) != skip && eligible(int(p.idx)) {
			return int(p.idx)
		}
	}
	return -1
}
