package fleet

// Hot-key detection: a count-min sketch over request fingerprints. Routing
// purely by ring owner has one failure mode — a single fingerprint hot
// enough to saturate its owner serializes the whole fleet behind one
// backend while the others idle. The sketch estimates each key's recent
// frequency in constant space; keys whose estimate crosses the spill
// threshold are routed round-robin across every eligible backend instead,
// replicating their response bytes fleet-wide (each backend's response
// cache warms the key on its first spilled hit, so the replication costs
// one cold miss per backend, ever).
//
// Counters decay by halving every windowAdds touches, so "hot" means hot
// recently — a key that was hot an hour ago ages back to ring-owner routing
// and single-copy residency. The sketch is approximate by design:
// collisions can only overestimate (spilling a lukewarm key early is
// harmless — it just warms more caches), never underestimate past the
// usual count-min bound.

import (
	"encoding/binary"
	"sync/atomic"

	"sentinel/internal/fingerprint"
)

const (
	// sketchRows/sketchCols size the sketch: 4 rows × 1024 counters = 16 KiB,
	// enough that at the default 4096-add decay window the collision error
	// stays far below any sane spill threshold.
	sketchRows = 4
	sketchCols = 1024 // must stay a power of two (indices are masked)
)

// sketch is the count-min estimator. All updates are plain atomics; the
// decay halving races benignly with concurrent touches (the structure is
// approximate either way).
type sketch struct {
	counts     [sketchRows * sketchCols]atomic.Uint32
	adds       atomic.Uint32
	windowAdds uint32
}

// newSketch builds a sketch that halves every counter after windowAdds
// touches (0 disables decay).
func newSketch(windowAdds int) *sketch {
	s := &sketch{}
	if windowAdds > 0 {
		s.windowAdds = uint32(windowAdds)
	}
	return s
}

// touch counts one occurrence of k and returns the new frequency estimate:
// the minimum across rows, each row indexed by an independent 64-bit window
// of the sha256 fingerprint (no extra hashing needed — the key is already
// uniform). Allocation-free.
func (s *sketch) touch(k fingerprint.Key) uint32 {
	est := ^uint32(0)
	for row := 0; row < sketchRows; row++ {
		col := binary.LittleEndian.Uint64(k[8*row:]) & (sketchCols - 1)
		if v := s.counts[row*sketchCols+int(col)].Add(1); v < est {
			est = v
		}
	}
	if s.windowAdds > 0 && s.adds.Add(1)%s.windowAdds == 0 {
		s.decay()
	}
	return est
}

// decay halves every counter — an exponential forgetting of old traffic.
// Plain load/store per counter: a concurrently added increment may be lost
// or survive unhalved, both within the sketch's error budget.
func (s *sketch) decay() {
	for i := range s.counts {
		if v := s.counts[i].Load(); v > 0 {
			s.counts[i].Store(v / 2)
		}
	}
}
