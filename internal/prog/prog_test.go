package prog

import (
	"strings"
	"testing"

	"sentinel/internal/ir"
	"sentinel/internal/mem"
)

// sumProgram builds: sum integers stored at base..base+8n, print the sum.
//
//	entry: r1=base, r2=n, r3=0 (sum), r4=0 (i)
//	loop:  bge r4, r2, done
//	       ld r5, 0(r1); add r3,r3,r5; add r1,r1,8; add r4,r4,1; jmp loop
//	done:  mov r4, r3 ... wait putint takes arg reg; jsr putint with r3
func sumProgram(base int64, n int64) *Program {
	p := NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), base),
		ir.LI(ir.R(2), n),
		ir.LI(ir.R(3), 0),
		ir.LI(ir.R(4), 0),
	)
	p.AddBlock("loop",
		ir.BR(ir.Bge, ir.R(4), ir.R(2), "done"),
	)
	p.AddBlock("body",
		ir.LOAD(ir.Ld, ir.R(5), ir.R(1), 0),
		ir.ALU(ir.Add, ir.R(3), ir.R(3), ir.R(5)),
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 8),
		ir.ALUI(ir.Add, ir.R(4), ir.R(4), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("done",
		ir.JSR("putint", ir.R(3)),
		ir.HALT(),
	)
	return p
}

func sumMemory(base int64, vals []int64) *mem.Memory {
	m := mem.New()
	m.Map("data", base, len(vals)*8+8)
	for i, v := range vals {
		m.Write(base+int64(i)*8, 8, uint64(v))
	}
	return m
}

func TestRunSumLoop(t *testing.T) {
	p := sumProgram(0x1000, 4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Layout()
	m := sumMemory(0x1000, []int64{3, 5, 7, 11})
	res, err := Run(p, m, Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Out) != 1 || res.Out[0] != 26 {
		t.Fatalf("Out = %v, want [26]", res.Out)
	}
	if res.Profile.Blocks["loop"] != 5 || res.Profile.Blocks["body"] != 4 {
		t.Errorf("block counts: %v", res.Profile.Blocks)
	}
	bs := res.Profile.Branches[BranchKey{"loop", 0}]
	if bs == nil || bs.Taken != 1 || bs.NotTaken != 4 {
		t.Errorf("branch stats: %+v", bs)
	}
	if got := res.Profile.Edges[EdgeKey{"body", "loop"}]; got != 4 {
		t.Errorf("edge body->loop = %d, want 4", got)
	}
	if got := res.Profile.Edges[EdgeKey{"loop", "done"}]; got != 1 {
		t.Errorf("edge loop->done = %d, want 1", got)
	}
}

func TestBranchProb(t *testing.T) {
	s := &BranchStat{Taken: 3, NotTaken: 1}
	if s.Prob() != 0.75 {
		t.Errorf("Prob = %v", s.Prob())
	}
	if (&BranchStat{}).Prob() != 0 {
		t.Error("empty stat must have probability 0")
	}
}

func TestLayoutAndInstrAt(t *testing.T) {
	p := sumProgram(0x1000, 1)
	n := p.Layout()
	if n != 12 {
		t.Fatalf("Layout = %d instructions, want 12", n)
	}
	in, b, idx := p.InstrAt(4)
	if in == nil || b.Label != "loop" || idx != 0 {
		t.Errorf("InstrAt(4) = %v in %v[%d]", in, b, idx)
	}
	if in2, _, _ := p.InstrAt(999); in2 != nil {
		t.Error("InstrAt out of range must return nil")
	}
}

func TestSuccessors(t *testing.T) {
	p := sumProgram(0x1000, 1)
	succ := func(label string) []string { return p.Successors(p.Block(label)) }
	if s := succ("entry"); len(s) != 1 || s[0] != "loop" {
		t.Errorf("entry succ = %v", s)
	}
	if s := succ("loop"); len(s) != 2 || s[0] != "done" || s[1] != "body" {
		t.Errorf("loop succ = %v", s)
	}
	if s := succ("body"); len(s) != 1 || s[0] != "loop" {
		t.Errorf("body succ = %v (jmp must suppress fallthrough)", s)
	}
	if s := succ("done"); len(s) != 0 {
		t.Errorf("done succ = %v (halt has no successors)", s)
	}
}

func TestValidateCatchesBadTargets(t *testing.T) {
	p := NewProgram()
	p.AddBlock("a", ir.BR(ir.Beq, ir.R(1), ir.R(2), "missing"), ir.HALT())
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("Validate = %v, want undefined-target error", err)
	}

	p2 := NewProgram()
	p2.AddBlock("a", ir.HALT(), ir.NOP())
	if err := p2.Validate(); err == nil {
		t.Error("halt in non-terminal position must be rejected")
	}

	p3 := NewProgram()
	if err := p3.Validate(); err == nil {
		t.Error("empty program must be rejected")
	}
}

func TestDuplicateLabelPanics(t *testing.T) {
	p := NewProgram()
	p.AddBlock("a", ir.HALT())
	defer func() {
		if recover() == nil {
			t.Error("duplicate label must panic")
		}
	}()
	p.AddBlock("a", ir.HALT())
}

func TestCloneIndependence(t *testing.T) {
	p := sumProgram(0x1000, 2)
	p.Layout()
	c := p.Clone()
	c.Block("loop").Instrs[0].Target = "body"
	if p.Block("loop").Instrs[0].Target != "done" {
		t.Error("clone must not alias instructions")
	}
	if c.Entry != p.Entry || len(c.Blocks) != len(p.Blocks) {
		t.Error("clone structure mismatch")
	}
}

func TestFaultHandlerRetry(t *testing.T) {
	p := NewProgram()
	p.AddBlock("main",
		ir.LI(ir.R(1), 0x1000),
		ir.LOAD(ir.Ld, ir.R(2), ir.R(1), 0),
		ir.JSR("putint", ir.R(2)),
		ir.HALT(),
	)
	p.Layout()
	m := mem.New()
	seg := m.Map("heap", 0x1000, 8)
	m.Write(0x1000, 8, 77)
	seg.Present = false // paged out

	calls := 0
	h := func(exc ExcInfo, env *Env) bool {
		calls++
		if exc.Kind != ir.ExcPageFault {
			t.Errorf("fault kind = %v", exc.Kind)
		}
		seg.Present = true // the OS maps the page in
		return true
	}
	res, err := Run(p, m, Options{Handler: h})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || len(res.Out) != 1 || res.Out[0] != 77 {
		t.Errorf("calls=%d out=%v", calls, res.Out)
	}
}

func TestUnhandledExceptionAborts(t *testing.T) {
	p := NewProgram()
	p.AddBlock("main",
		ir.LI(ir.R(1), 5),
		ir.LI(ir.R(2), 0),
		ir.ALU(ir.Div, ir.R(3), ir.R(1), ir.R(2)),
		ir.HALT(),
	)
	p.Layout()
	_, err := Run(p, mem.New(), Options{})
	exc, ok := err.(*ExcInfo)
	if !ok || exc.Kind != ir.ExcDivZero || exc.PC != 2 {
		t.Fatalf("err = %v, want divide-by-zero at pc 2", err)
	}
}

func TestInstructionBudget(t *testing.T) {
	p := NewProgram()
	p.AddBlock("spin", ir.JMP("spin"))
	p.Layout()
	if _, err := Run(p, mem.New(), Options{MaxInstrs: 100}); err == nil {
		t.Fatal("runaway loop must hit the instruction budget")
	}
}

func TestFPPath(t *testing.T) {
	p := NewProgram()
	p.AddBlock("main",
		ir.LI(ir.R(1), 3),
		ir.UN(ir.Cvif, ir.F(1), ir.R(1)),           // f1 = 3.0
		ir.ALU(ir.Fadd, ir.F(2), ir.F(1), ir.F(1)), // f2 = 6.0
		ir.ALU(ir.Fmul, ir.F(3), ir.F(2), ir.F(1)), // f3 = 18.0
		ir.UN(ir.Cvfi, ir.R(2), ir.F(3)),           // r2 = 18
		ir.JSR("putint", ir.R(2)),
		ir.HALT(),
	)
	p.Layout()
	res, err := Run(p, mem.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Out) != 1 || res.Out[0] != 18 {
		t.Fatalf("Out = %v, want [18]", res.Out)
	}
}

func TestR0HardwiredZero(t *testing.T) {
	p := NewProgram()
	p.AddBlock("main",
		ir.LI(ir.R(0), 42), // discarded
		ir.ALUI(ir.Add, ir.R(1), ir.R(0), 7),
		ir.JSR("putint", ir.R(1)),
		ir.HALT(),
	)
	p.Layout()
	res, err := Run(p, mem.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out[0] != 7 {
		t.Fatalf("Out = %v; r0 must stay zero", res.Out)
	}
}

func TestProgramString(t *testing.T) {
	p := sumProgram(0x1000, 1)
	s := p.String()
	for _, want := range []string{"entry:", "loop:", "ld r5, 0(r1)", "jsr putint"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
