// Package prog defines whole programs as ordered lists of labelled blocks,
// plus the reference sequential interpreter that serves as architectural
// ground truth and as the profiler driving superblock formation.
//
// A Block before superblock formation is a basic block (at most one control
// instruction, at the end). After formation, blocks may be superblocks:
// control enters only at the top but may leave at interior side-exit
// branches. Control falls through from each block to the next block in
// program order unless an instruction transfers it elsewhere.
package prog

import (
	"fmt"
	"strings"

	"sentinel/internal/ir"
)

// Block is a labelled straight-line sequence of instructions.
type Block struct {
	Label  string
	Instrs []*ir.Instr

	// Superblock marks blocks produced by superblock formation; the
	// scheduler only reorders within superblocks.
	Superblock bool

	// WeightHint carries the profiled execution count through formation so
	// the evaluator can report per-block contributions.
	WeightHint int64
}

// Clone deep-copies the block.
func (b *Block) Clone() *Block {
	nb := &Block{Label: b.Label, Superblock: b.Superblock, WeightHint: b.WeightHint}
	nb.Instrs = make([]*ir.Instr, len(b.Instrs))
	for i, in := range b.Instrs {
		nb.Instrs[i] = in.Clone()
	}
	return nb
}

// Branches returns the indices of control instructions in the block.
func (b *Block) Branches() []int {
	var out []int
	for i, in := range b.Instrs {
		if ir.IsControl(in.Op) {
			out = append(out, i)
		}
	}
	return out
}

// Program is an ordered list of blocks; execution starts at Entry (the first
// block when empty).
//
// Concurrency: a Program is not safe for concurrent mutation, but once fully
// constructed (and laid out, if PCs are needed) every read-only method —
// Block, BlockIndex, InstrAt, Successors, Clone, String, Validate — may be
// called from multiple goroutines simultaneously. The evaluation runner
// shares built and formed programs across workers on this guarantee;
// mutating consumers (the scheduler, formation) clone first.
type Program struct {
	Blocks []*Block
	Entry  string

	byLabel map[string]*Block
}

// New returns an empty program.
func NewProgram() *Program { return &Program{byLabel: map[string]*Block{}} }

// AddBlock appends a new block with the given label and instructions.
func (p *Program) AddBlock(label string, instrs ...*ir.Instr) *Block {
	if p.byLabel == nil {
		p.byLabel = map[string]*Block{}
	}
	if _, dup := p.byLabel[label]; dup {
		panic(fmt.Sprintf("prog: duplicate block label %q", label))
	}
	b := &Block{Label: label, Instrs: instrs}
	p.Blocks = append(p.Blocks, b)
	p.byLabel[label] = b
	if p.Entry == "" {
		p.Entry = label
	}
	return b
}

// Block returns the block with the given label, or nil. When the label
// index has not been built (a Program assembled by hand rather than through
// NewProgram/AddBlock/Reindex), it falls back to a linear scan instead of
// building the index, so Block never writes and stays safe for concurrent
// readers.
func (p *Program) Block(label string) *Block {
	if p.byLabel == nil {
		for _, b := range p.Blocks {
			if b.Label == label {
				return b
			}
		}
		return nil
	}
	return p.byLabel[label]
}

// BlockIndex returns the position of the labelled block in program order,
// or -1.
func (p *Program) BlockIndex(label string) int {
	for i, b := range p.Blocks {
		if b.Label == label {
			return i
		}
	}
	return -1
}

// Reindex rebuilds the label index after direct manipulation of Blocks
// (e.g. by superblock formation). It panics on duplicate labels.
func (p *Program) Reindex() {
	p.byLabel = make(map[string]*Block, len(p.Blocks))
	for _, b := range p.Blocks {
		if _, dup := p.byLabel[b.Label]; dup {
			panic(fmt.Sprintf("prog: duplicate block label %q", b.Label))
		}
		p.byLabel[b.Label] = b
	}
}

// Clone deep-copies the program.
func (p *Program) Clone() *Program {
	np := NewProgram()
	np.Entry = p.Entry
	for _, b := range p.Blocks {
		nb := b.Clone()
		np.Blocks = append(np.Blocks, nb)
		np.byLabel[nb.Label] = nb
	}
	return np
}

// Layout assigns a unique PC to every instruction (sequential across blocks
// in program order) and returns the total instruction count. The simulator
// reports exception PCs in this numbering.
func (p *Program) Layout() int {
	pc := 0
	for _, b := range p.Blocks {
		for _, in := range b.Instrs {
			in.PC = pc
			pc++
		}
	}
	return pc
}

// InstrAt returns the instruction with the given PC along with its block and
// index, or nils. Layout must have been called.
func (p *Program) InstrAt(pc int) (*ir.Instr, *Block, int) {
	for _, b := range p.Blocks {
		for i, in := range b.Instrs {
			if in.PC == pc {
				return in, b, i
			}
		}
	}
	return nil, nil, -1
}

// Successors returns the labels a block can transfer control to: every
// branch/jump target plus fall-through to the next block (unless the block
// ends in an unconditional transfer or halt).
func (p *Program) Successors(b *Block) []string {
	var out []string
	seen := map[string]bool{}
	add := func(l string) {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	fallsThrough := true
	for i, in := range b.Instrs {
		switch {
		case ir.IsBranch(in.Op):
			add(in.Target)
		case in.Op == ir.Jmp:
			add(in.Target)
			if i == len(b.Instrs)-1 {
				fallsThrough = false
			}
		case in.Op == ir.Halt:
			if i == len(b.Instrs)-1 {
				fallsThrough = false
			}
		}
	}
	if fallsThrough {
		if idx := p.BlockIndex(b.Label); idx >= 0 && idx+1 < len(p.Blocks) {
			add(p.Blocks[idx+1].Label)
		}
	}
	return out
}

// Validate checks structural well-formedness: a nonempty entry block, all
// control-transfer targets defined, Jmp/Halt only in terminal position of a
// block (pre-scheduling basic-block discipline is NOT enforced here, since
// superblocks legally contain interior conditional branches).
func (p *Program) Validate() error {
	if len(p.Blocks) == 0 {
		return fmt.Errorf("prog: empty program")
	}
	if p.Block(p.Entry) == nil {
		return fmt.Errorf("prog: entry block %q not found", p.Entry)
	}
	for _, b := range p.Blocks {
		for i, in := range b.Instrs {
			switch {
			case ir.IsBranch(in.Op) || in.Op == ir.Jmp:
				if p.Block(in.Target) == nil {
					return fmt.Errorf("prog: block %q instr %d: undefined target %q", b.Label, i, in.Target)
				}
			case in.Op == ir.Jsr && in.Target == "":
				return fmt.Errorf("prog: block %q instr %d: jsr without routine name", b.Label, i)
			}
			if (in.Op == ir.Jmp || in.Op == ir.Halt) && i != len(b.Instrs)-1 {
				return fmt.Errorf("prog: block %q instr %d: %v must terminate its block", b.Label, i, in.Op)
			}
		}
	}
	return nil
}

// String renders the program as assembly text.
func (p *Program) String() string {
	var sb strings.Builder
	for _, b := range p.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Label)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", in)
		}
	}
	return sb.String()
}
