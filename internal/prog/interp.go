package prog

import (
	"fmt"
	"math"

	"sentinel/internal/ir"
	"sentinel/internal/mem"
)

// Env is the architectural state of the reference machine: 64 integer and 64
// floating-point registers, data memory, and the output stream produced by
// runtime calls. The reference interpreter has no exception tags; it is a
// precise sequential machine.
type Env struct {
	Int [ir.NumIntRegs]int64
	FP  [ir.NumFPRegs]float64
	Mem *mem.Memory
	Out []int64
}

// Get reads a register as raw data.
func (e *Env) Get(r ir.Reg) int64 {
	if r.Class == ir.IntClass {
		return e.Int[r.N]
	}
	return int64(math.Float64bits(e.FP[r.N]))
}

// GetFP reads a floating-point register.
func (e *Env) GetFP(r ir.Reg) float64 { return e.FP[r.N] }

// Set writes an integer register (writes to r0 are discarded).
func (e *Env) Set(r ir.Reg, v int64) {
	if r.Class == ir.IntClass {
		if r.N != 0 {
			e.Int[r.N] = v
		}
		return
	}
	e.FP[r.N] = math.Float64frombits(uint64(v))
}

// SetFP writes a floating-point register.
func (e *Env) SetFP(r ir.Reg, v float64) { e.FP[r.N] = v }

// ExcInfo describes a signalled exception of the reference machine.
type ExcInfo struct {
	PC   int
	Kind ir.ExcKind
	Addr int64 // faulting address for memory exceptions
}

func (x *ExcInfo) Error() string {
	return fmt.Sprintf("exception %v at pc %d (addr %#x)", x.Kind, x.PC, x.Addr)
}

// FaultHandler decides what happens on an exception. Returning true retries
// the excepting instruction (after the handler presumably repaired the
// cause, e.g. mapped a page in); returning false aborts execution with the
// exception as the error.
type FaultHandler func(exc ExcInfo, env *Env) bool

// BranchKey identifies a conditional branch site within a program.
type BranchKey struct {
	Block string
	Index int
}

// BranchStat accumulates a branch's dynamic outcomes.
type BranchStat struct {
	Taken    int64
	NotTaken int64
}

// Prob returns the taken probability (0 when never executed).
func (s *BranchStat) Prob() float64 {
	n := s.Taken + s.NotTaken
	if n == 0 {
		return 0
	}
	return float64(s.Taken) / float64(n)
}

// EdgeKey identifies a control-flow edge between blocks.
type EdgeKey struct{ From, To string }

// Profile holds the dynamic execution profile used by superblock formation.
type Profile struct {
	Blocks   map[string]int64
	Branches map[BranchKey]*BranchStat
	Edges    map[EdgeKey]int64
}

func newProfile() *Profile {
	return &Profile{
		Blocks:   map[string]int64{},
		Branches: map[BranchKey]*BranchStat{},
		Edges:    map[EdgeKey]int64{},
	}
}

func (p *Profile) branch(k BranchKey) *BranchStat {
	s := p.Branches[k]
	if s == nil {
		s = &BranchStat{}
		p.Branches[k] = s
	}
	return s
}

// Options configures a reference run.
type Options struct {
	// MaxInstrs bounds execution (default 100M) to catch runaway programs.
	MaxInstrs int64
	// Handler is invoked on exceptions; nil aborts on the first exception.
	Handler FaultHandler
	// Collect enables profile collection.
	Collect bool
}

// Result is the outcome of a reference run.
type Result struct {
	Env     *Env
	Out     []int64
	MemSum  uint64
	Instrs  int64
	Profile *Profile
}

// Runtime routines callable via Jsr. The routine receives the value of the
// call's argument register. These model the I/O the paper treats as
// irreversible instructions.
var runtimeFns = map[string]func(arg int64, env *Env){
	"putint": func(arg int64, env *Env) { env.Out = append(env.Out, arg) },
}

// RuntimeKnown reports whether name is a defined runtime routine.
func RuntimeKnown(name string) bool { _, ok := runtimeFns[name]; return ok }

// Run executes p sequentially on the given memory (mutated in place) and
// returns the architectural result. The program must have been laid out
// (Layout) and validated.
func Run(p *Program, m *mem.Memory, opts Options) (*Result, error) {
	if opts.MaxInstrs == 0 {
		opts.MaxInstrs = 100_000_000
	}
	env := &Env{Mem: m}
	res := &Result{Env: env}
	if opts.Collect {
		res.Profile = newProfile()
	}

	bi := p.BlockIndex(p.Entry)
	if bi < 0 {
		return nil, fmt.Errorf("prog: entry %q not found", p.Entry)
	}
	for bi >= 0 {
		b := p.Blocks[bi]
		if res.Profile != nil {
			res.Profile.Blocks[b.Label]++
		}
		next, halted, err := runBlock(p, b, bi, env, res, &opts)
		if err != nil {
			return res, err
		}
		if halted {
			break
		}
		bi = next
		if bi >= len(p.Blocks) {
			return res, fmt.Errorf("prog: fell off the end of the program after block %q", b.Label)
		}
	}
	res.Out = env.Out
	res.MemSum = m.Checksum()
	return res, nil
}

// runBlock executes one block and returns the index of the next block, or
// halted=true.
func runBlock(p *Program, b *Block, bi int, env *Env, res *Result, opts *Options) (int, bool, error) {
	edge := func(to string) {
		if res.Profile != nil {
			res.Profile.Edges[EdgeKey{b.Label, to}]++
		}
	}
	for i := 0; i < len(b.Instrs); i++ {
		in := b.Instrs[i]
		res.Instrs++
		if res.Instrs > opts.MaxInstrs {
			return 0, false, fmt.Errorf("prog: instruction budget exceeded (%d)", opts.MaxInstrs)
		}
	retry:
		taken, exc := step(in, env)
		if exc != ir.ExcNone {
			info := ExcInfo{PC: in.PC, Kind: exc, Addr: faultAddr(in, env)}
			if opts.Handler != nil && opts.Handler(info, env) {
				goto retry
			}
			return 0, false, &info
		}
		switch {
		case in.Op == ir.Halt:
			return 0, true, nil
		case in.Op == ir.Jmp:
			edge(in.Target)
			return p.BlockIndex(in.Target), false, nil
		case ir.IsBranch(in.Op):
			if res.Profile != nil {
				s := res.Profile.branch(BranchKey{b.Label, i})
				if taken {
					s.Taken++
				} else {
					s.NotTaken++
				}
			}
			if taken {
				edge(in.Target)
				return p.BlockIndex(in.Target), false, nil
			}
		}
	}
	if bi+1 < len(p.Blocks) {
		edge(p.Blocks[bi+1].Label)
	}
	return bi + 1, false, nil
}

func faultAddr(in *ir.Instr, env *Env) int64 {
	if ir.IsMem(in.Op) {
		return env.Int[in.Src1.N] + in.Imm
	}
	return 0
}

// step executes one instruction's value semantics, returning whether a
// branch was taken and any exception raised.
func step(in *ir.Instr, env *Env) (taken bool, exc ir.ExcKind) {
	src2int := func() int64 {
		if in.Src2.Valid() {
			return env.Int[in.Src2.N]
		}
		return in.Imm
	}
	switch in.Op {
	case ir.Nop, ir.Check, ir.ConfirmSt:
		// No architectural effect on the reference machine.
	case ir.ClearTag:
		// Tags do not exist on the reference machine.
	case ir.Li:
		env.Set(in.Dest, in.Imm)
	case ir.Mov:
		env.Set(in.Dest, env.Int[in.Src1.N])
	case ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr, ir.Slt:
		env.Set(in.Dest, ir.IntALUOp(in.Op, env.Int[in.Src1.N], src2int()))
	case ir.Div, ir.Rem:
		v, e := ir.IntDivOp(in.Op, env.Int[in.Src1.N], src2int())
		if e != ir.ExcNone {
			return false, e
		}
		env.Set(in.Dest, v)
	case ir.Ld, ir.Ldb:
		v, f := env.Mem.Read(env.Int[in.Src1.N]+in.Imm, ir.MemSize(in.Op))
		if f != nil {
			return false, f.Kind
		}
		env.Set(in.Dest, int64(v))
	case ir.Fld:
		v, f := env.Mem.Read(env.Int[in.Src1.N]+in.Imm, 8)
		if f != nil {
			return false, f.Kind
		}
		env.SetFP(in.Dest, math.Float64frombits(v))
	case ir.St, ir.Stb:
		if f := env.Mem.Write(env.Int[in.Src1.N]+in.Imm, ir.MemSize(in.Op), uint64(env.Int[in.Src2.N])); f != nil {
			return false, f.Kind
		}
	case ir.Fst:
		if f := env.Mem.Write(env.Int[in.Src1.N]+in.Imm, 8, math.Float64bits(env.FP[in.Src2.N])); f != nil {
			return false, f.Kind
		}
	case ir.SaveTR:
		// The reference machine has no tags; SaveTR degenerates to a store.
		if f := env.Mem.WriteTagged(env.Int[in.Src1.N]+in.Imm, uint64(env.Get(in.Src2)), 0); f != nil {
			return false, f.Kind
		}
	case ir.RestTR:
		v, _, f := env.Mem.ReadTagged(env.Int[in.Src1.N] + in.Imm)
		if f != nil {
			return false, f.Kind
		}
		env.Set(in.Dest, int64(v))
	case ir.Fadd, ir.Fsub, ir.Fmul, ir.Fdiv:
		v, e := ir.FPOp(in.Op, env.FP[in.Src1.N], env.FP[in.Src2.N])
		if e != ir.ExcNone {
			return false, e
		}
		env.SetFP(in.Dest, v)
	case ir.Fmov, ir.Fneg, ir.Fabs:
		env.SetFP(in.Dest, ir.FPUnOp(in.Op, env.FP[in.Src1.N]))
	case ir.Cvif:
		env.SetFP(in.Dest, float64(env.Int[in.Src1.N]))
	case ir.Cvfi:
		v, e := ir.CvfiOp(env.FP[in.Src1.N])
		if e != ir.ExcNone {
			return false, e
		}
		env.Set(in.Dest, v)
	case ir.Feq, ir.Flt, ir.Fle:
		v, e := ir.FPCmpOp(in.Op, env.FP[in.Src1.N], env.FP[in.Src2.N])
		if e != ir.ExcNone {
			return false, e
		}
		env.Set(in.Dest, v)
	case ir.Beq, ir.Bne, ir.Blt, ir.Bge:
		return ir.CondHolds(in.Op, env.Int[in.Src1.N], src2int()), ir.ExcNone
	case ir.Jmp, ir.Halt:
		// Control handled by the caller.
	case ir.Jsr:
		fn, ok := runtimeFns[in.Target]
		if !ok {
			panic(fmt.Sprintf("prog: unknown runtime routine %q", in.Target))
		}
		fn(env.Int[in.Src1.N], env)
	default:
		panic(fmt.Sprintf("prog: unhandled opcode %v", in.Op))
	}
	return false, ir.ExcNone
}
