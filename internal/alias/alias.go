// Package alias implements the memory disambiguation the scheduler relies
// on to reorder memory operations — the stand-in for the object-level alias
// information the IMPACT C front end derives from the source language.
//
// Two analyses are provided:
//
//  1. Pointer provenance: a flow-insensitive fixpoint assigns each register
//     the set of "roots" (distinct LI base constants) its value can derive
//     from. References whose bases have different, known roots address
//     different objects and cannot alias. MIR programs must address an
//     object only through pointers derived from that object's defining LI
//     (the analogue of C's undefined behaviour for cross-object pointer
//     arithmetic).
//  2. Affine base tracking (in package depgraph): within a superblock,
//     redefinitions of a base register by a constant add keep references
//     comparable, so unrolled iterations' accesses disambiguate by offset.
package alias

import (
	"sentinel/internal/ir"
	"sentinel/internal/prog"
)

// Root describes what a register's value can point into.
type Root struct {
	// Known is false when the register may hold a pointer of unknown
	// origin (loaded from memory, computed from two registers, ...).
	Known bool
	// ID identifies the defining LI constant. Two known roots with
	// different IDs address disjoint objects.
	ID int64
}

// bottom (zero Root with Known=false) is "no information yet" internally;
// we distinguish it with a tri-state during the fixpoint.
type state uint8

const (
	unset state = iota
	rooted
	unknown
)

// Provenance holds the per-register analysis result.
type Provenance struct {
	st   map[ir.Reg]state
	root map[ir.Reg]int64
}

// Analyze computes register provenance for the whole program by iterating
// the transfer functions to a fixpoint. The analysis is flow-insensitive
// (one fact per register), which is sound: any conflicting definition
// degrades to unknown.
func Analyze(p *prog.Program) *Provenance {
	pv := &Provenance{st: map[ir.Reg]state{}, root: map[ir.Reg]int64{}}
	for changed := true; changed; {
		changed = false
		for _, b := range p.Blocks {
			for _, in := range b.Instrs {
				if pv.transfer(in) {
					changed = true
				}
			}
		}
	}
	return pv
}

func (pv *Provenance) transfer(in *ir.Instr) bool {
	d, ok := in.Def()
	if !ok {
		return false
	}
	switch {
	case in.Op == ir.Li:
		return pv.joinRoot(d, in.Imm)
	case in.Op == ir.Mov || (in.Op == ir.Add || in.Op == ir.Sub) && !in.Src2.Valid():
		// Copy or pointer arithmetic with a constant: propagate the source.
		return pv.joinFrom(d, in.Src1)
	case in.Op == ir.Add && in.Src2.Valid():
		// base + index: when exactly one operand has a known root, the
		// other is the scaled index (the a[i] pattern). Two known roots
		// would mean adding two pointers — degrade to unknown.
		a, b := pv.st[in.Src1], pv.st[in.Src2]
		switch {
		case a == rooted && b == unknown || in.Src2.IsZero():
			return pv.joinFrom(d, in.Src1)
		case b == rooted && a == unknown || in.Src1.IsZero():
			return pv.joinFrom(d, in.Src2)
		case a == unset || b == unset:
			return false // wait for more information
		default:
			return pv.joinUnknown(d)
		}
	default:
		return pv.joinUnknown(d)
	}
}

func (pv *Provenance) joinRoot(d ir.Reg, id int64) bool {
	switch pv.st[d] {
	case unset:
		pv.st[d] = rooted
		pv.root[d] = id
		return true
	case rooted:
		if pv.root[d] != id {
			pv.st[d] = unknown
			return true
		}
	}
	return false
}

func (pv *Provenance) joinFrom(d, s ir.Reg) bool {
	if s.IsZero() {
		return pv.joinRoot(d, 0)
	}
	switch pv.st[s] {
	case unset:
		return false // nothing known about the source yet
	case rooted:
		return pv.joinRoot(d, pv.root[s])
	default:
		return pv.joinUnknown(d)
	}
}

func (pv *Provenance) joinUnknown(d ir.Reg) bool {
	if pv.st[d] != unknown {
		pv.st[d] = unknown
		return true
	}
	return false
}

// Of returns the provenance of a register.
func (pv *Provenance) Of(r ir.Reg) Root {
	if pv.st[r] == rooted {
		return Root{Known: true, ID: pv.root[r]}
	}
	return Root{}
}

// Disjoint reports whether two base registers provably address different
// objects.
func (pv *Provenance) Disjoint(a, b ir.Reg) bool {
	ra, rb := pv.Of(a), pv.Of(b)
	return ra.Known && rb.Known && ra.ID != rb.ID
}
