package alias

import (
	"testing"

	"sentinel/internal/ir"
	"sentinel/internal/prog"
)

func analyze(instrs ...*ir.Instr) *Provenance {
	p := prog.NewProgram()
	instrs = append(instrs, ir.HALT())
	p.AddBlock("main", instrs...)
	return Analyze(p)
}

func TestLIRoots(t *testing.T) {
	pv := analyze(
		ir.LI(ir.R(1), 0x1000),
		ir.LI(ir.R(2), 0x2000),
	)
	if !pv.Of(ir.R(1)).Known || pv.Of(ir.R(1)).ID != 0x1000 {
		t.Errorf("r1 = %+v", pv.Of(ir.R(1)))
	}
	if !pv.Disjoint(ir.R(1), ir.R(2)) {
		t.Error("distinct LI roots must be disjoint")
	}
	if pv.Disjoint(ir.R(1), ir.R(1)) {
		t.Error("a register is never disjoint from itself")
	}
}

func TestConstantArithmeticPreservesRoot(t *testing.T) {
	pv := analyze(
		ir.LI(ir.R(1), 0x1000),
		ir.ALUI(ir.Add, ir.R(3), ir.R(1), 8),
		ir.ALUI(ir.Sub, ir.R(4), ir.R(3), 16),
		ir.MOV(ir.R(5), ir.R(4)),
		ir.LI(ir.R(2), 0x2000),
	)
	for _, r := range []ir.Reg{ir.R(3), ir.R(4), ir.R(5)} {
		if root := pv.Of(r); !root.Known || root.ID != 0x1000 {
			t.Errorf("%v = %+v, want root 0x1000", r, root)
		}
		if !pv.Disjoint(r, ir.R(2)) {
			t.Errorf("%v must be disjoint from the 0x2000 root", r)
		}
	}
}

func TestBasePlusIndexPattern(t *testing.T) {
	// r9 = (unknown index) + (rooted base): takes the base's root.
	pv := analyze(
		ir.LI(ir.R(3), 0x8000),               // table base
		ir.LOAD(ir.Ld, ir.R(5), ir.R(3), 0),  // r5 unknown (loaded)
		ir.ALUI(ir.Shl, ir.R(6), ir.R(5), 3), // r6 unknown
		ir.ALU(ir.Add, ir.R(9), ir.R(6), ir.R(3)),
		ir.LI(ir.R(1), 0x1000),
	)
	if root := pv.Of(ir.R(9)); !root.Known || root.ID != 0x8000 {
		t.Errorf("r9 = %+v, want table root", root)
	}
	if !pv.Disjoint(ir.R(9), ir.R(1)) {
		t.Error("indexed table access must be disjoint from another array")
	}
}

func TestTwoRootsDegradeToUnknown(t *testing.T) {
	pv := analyze(
		ir.LI(ir.R(1), 0x1000),
		ir.LI(ir.R(2), 0x2000),
		ir.ALU(ir.Add, ir.R(3), ir.R(1), ir.R(2)), // pointer + pointer
	)
	if pv.Of(ir.R(3)).Known {
		t.Error("adding two rooted values must degrade to unknown")
	}
	if pv.Disjoint(ir.R(3), ir.R(1)) {
		t.Error("unknown provenance must never be disjoint")
	}
}

func TestConflictingDefsDegrade(t *testing.T) {
	// r1 is assigned two different roots on different paths (modelled
	// flow-insensitively as two defs).
	pv := analyze(
		ir.LI(ir.R(1), 0x1000),
		ir.LI(ir.R(1), 0x2000),
		ir.LI(ir.R(2), 0x3000),
	)
	if pv.Of(ir.R(1)).Known {
		t.Error("two different roots must join to unknown")
	}
}

func TestLoadedPointerUnknown(t *testing.T) {
	pv := analyze(
		ir.LI(ir.R(1), 0x1000),
		ir.LOAD(ir.Ld, ir.R(2), ir.R(1), 0), // pointer loaded from memory
	)
	if pv.Of(ir.R(2)).Known {
		t.Error("loaded values have unknown provenance")
	}
	if pv.Disjoint(ir.R(2), ir.R(1)) {
		t.Error("unknown vs rooted must not be disjoint")
	}
}

func TestZeroRegisterBase(t *testing.T) {
	// add r3, r0, r1 is a move from r1 in disguise.
	pv := analyze(
		ir.LI(ir.R(1), 0x1000),
		ir.ALU(ir.Add, ir.R(3), ir.R(0), ir.R(1)),
		ir.LI(ir.R(2), 0x2000),
	)
	if root := pv.Of(ir.R(3)); !root.Known || root.ID != 0x1000 {
		t.Errorf("r3 = %+v, want r1's root", root)
	}
}

func TestFixpointAcrossLoop(t *testing.T) {
	// A pointer incremented around a loop keeps its root.
	p := prog.NewProgram()
	p.AddBlock("entry", ir.LI(ir.R(1), 0x1000), ir.LI(ir.R(9), 0x2000))
	p.AddBlock("loop",
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 8),
		ir.BRI(ir.Blt, ir.R(1), 0x1100, "loop"),
	)
	p.AddBlock("done", ir.HALT())
	pv := Analyze(p)
	if root := pv.Of(ir.R(1)); !root.Known || root.ID != 0x1000 {
		t.Errorf("loop-carried pointer = %+v, want root preserved", root)
	}
	if !pv.Disjoint(ir.R(1), ir.R(9)) {
		t.Error("loop pointer must stay disjoint from the other array")
	}
}
