package sentinel

import (
	"math"

	"sentinel/internal/core"
	"sentinel/internal/machine"
	"sentinel/internal/prog"
)

func mathFloat64bits(f float64) uint64 { return math.Float64bits(f) }

func coreSchedule(p *prog.Program, md machine.Desc) (*prog.Program, core.Stats, error) {
	return core.Schedule(p, md)
}

// coreSchedule lets bench_test.go reach the scheduler without widening the
// public API.
