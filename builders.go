package sentinel

import "sentinel/internal/ir"

// MIR opcodes, re-exported for program construction.
const (
	Nop       = ir.Nop
	Add       = ir.Add
	Sub       = ir.Sub
	Mul       = ir.Mul
	Div       = ir.Div
	Rem       = ir.Rem
	And       = ir.And
	Or        = ir.Or
	Xor       = ir.Xor
	Shl       = ir.Shl
	Shr       = ir.Shr
	Slt       = ir.Slt
	Li        = ir.Li
	Mov       = ir.Mov
	Ld        = ir.Ld
	Ldb       = ir.Ldb
	Fld       = ir.Fld
	St        = ir.St
	Stb       = ir.Stb
	Fst       = ir.Fst
	Fadd      = ir.Fadd
	Fsub      = ir.Fsub
	Fmul      = ir.Fmul
	Fdiv      = ir.Fdiv
	Fmov      = ir.Fmov
	Fneg      = ir.Fneg
	Fabs      = ir.Fabs
	Cvif      = ir.Cvif
	Cvfi      = ir.Cvfi
	Feq       = ir.Feq
	Flt       = ir.Flt
	Fle       = ir.Fle
	Beq       = ir.Beq
	Bne       = ir.Bne
	Blt       = ir.Blt
	Bge       = ir.Bge
	Jmp       = ir.Jmp
	Jsr       = ir.Jsr
	Halt      = ir.Halt
	Check     = ir.Check
	ConfirmSt = ir.ConfirmSt
	ClearTag  = ir.ClearTag
)

// Register and instruction constructors, re-exported for program
// construction. See package ir for documentation.
var (
	R        = ir.R
	F        = ir.F
	ALU      = ir.ALU
	ALUI     = ir.ALUI
	LI       = ir.LI
	MOV      = ir.MOV
	FMOV     = ir.FMOV
	UN       = ir.UN
	LOAD     = ir.LOAD
	STORE    = ir.STORE
	BR       = ir.BR
	BRI      = ir.BRI
	JMP      = ir.JMP
	JSR      = ir.JSR
	HALT     = ir.HALT
	NOP      = ir.NOP
	CHECK    = ir.CHECK
	CONFIRM  = ir.CONFIRM
	CLEARTAG = ir.CLEARTAG
)
