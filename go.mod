module sentinel

go 1.24
