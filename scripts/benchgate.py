#!/usr/bin/env python3
"""Benchmark regression gate.

Compares a freshly measured BENCH_*.json against the committed baseline and
fails (exit 1) when any benchmark's ns_per_op regressed by more than the
threshold (default 20%). Improvements and alloc changes are reported but
never fail the gate: the allocation counts are pinned exactly by the JSON
diff a reviewer sees, while wall-clock noise on shared CI runners needs the
tolerance.

New benchmarks (in current, not in baseline) are reported and skipped so
adding benchmarks never wedges CI before the baseline is refreshed. The
reverse — a baseline benchmark missing from the current run — fails the
gate: it means a benchmark was deleted or broke, and warning alone would
let that pass silently forever. Pass --allow-missing during an intentional
rename/removal, then refresh the baseline.

Hard allocation bounds are opt-in per benchmark: --max-allocs Name=N
(repeatable) fails the gate when the current run's allocs_per_op exceeds N.
Unlike ns_per_op, allocation counts are deterministic, so a bound violation
is a real code change, never runner noise — it gates even benchmarks that
have no baseline entry yet.

Usage: benchgate.py BASELINE.json CURRENT.json [--threshold 0.20]
       [--allow-missing] [--max-allocs Name=N ...]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return {r["name"]: r for r in json.load(f)}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="maximum allowed ns_per_op regression (fraction)")
    ap.add_argument("--allow-missing", action="store_true",
                    help="warn instead of fail when a baseline benchmark is "
                         "missing from the current run (intentional rename "
                         "or removal, pending a baseline refresh)")
    ap.add_argument("--max-allocs", action="append", default=[],
                    metavar="NAME=N",
                    help="fail when NAME's current allocs_per_op exceeds N "
                         "(repeatable; alloc counts are deterministic, so "
                         "this is a hard bound, not a tolerance)")
    args = ap.parse_args()

    alloc_bounds = {}
    for spec in args.max_allocs:
        name, sep, bound = spec.partition("=")
        if not sep or not bound.isdigit():
            ap.error(f"--max-allocs wants NAME=N, got {spec!r}")
        alloc_bounds[name] = int(bound)

    base = load(args.baseline)
    cur = load(args.current)
    failed = []

    print(f"{'benchmark':<28} {'base ns/op':>14} {'cur ns/op':>14} {'delta':>8}  allocs")
    for name, b in base.items():
        c = cur.get(name)
        if c is None:
            # A benchmark present only in the baseline was deleted or broke.
            # That fails the gate unless --allow-missing acknowledges an
            # intentional rename/removal pending a baseline refresh.
            if args.allow_missing:
                print(f"WARNING: {name}: in baseline but not in current run; "
                      f"skipped (--allow-missing; refresh the baseline)",
                      file=sys.stderr)
            else:
                failed.append(
                    f"{name}: in baseline but not in current run "
                    f"(deleted or broken benchmark; pass --allow-missing "
                    f"for an intentional removal)")
            continue
        delta = (c["ns_per_op"] - b["ns_per_op"]) / b["ns_per_op"]
        mark = ""
        if delta > args.threshold:
            failed.append(
                f"{name}: ns/op regressed {delta:+.1%} "
                f"({b['ns_per_op']:.0f} -> {c['ns_per_op']:.0f})")
            mark = "  << FAIL"
        print(f"{name:<28} {b['ns_per_op']:>14.0f} {c['ns_per_op']:>14.0f} "
              f"{delta:>+7.1%}  {b['allocs_per_op']} -> {c['allocs_per_op']}{mark}")

    for name in cur:
        if name not in base:
            print(f"WARNING: {name}: new benchmark with no baseline; skipped "
                  f"(add it to the baseline)", file=sys.stderr)

    for name, bound in sorted(alloc_bounds.items()):
        c = cur.get(name)
        if c is None:
            failed.append(f"{name}: --max-allocs bound set but the benchmark "
                          f"is missing from the current run")
            continue
        allocs = c["allocs_per_op"]
        verdict = "ok" if allocs <= bound else "FAIL"
        print(f"{name:<28} allocs/op {allocs} (bound {bound}): {verdict}")
        if allocs > bound:
            failed.append(
                f"{name}: {allocs} allocs/op exceeds the hard bound of {bound}")

    if failed:
        print("\nbenchmark gate FAILED:", file=sys.stderr)
        for f in failed:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nbenchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
