// Recovery: the paper's Figure 3 scenario plus an end-to-end page-fault
// retry (§3.7). The program is scheduled with the restartable-sequence
// constraints (renaming transformation for the self-modifying increment,
// irreversible-call barrier, operand preservation), then run against a
// paged-out heap segment: the sentinel reports the speculative load's PC,
// the "operating system" maps the page in, and re-execution from the
// reported PC completes the program with the correct result.
package main

import (
	"fmt"
	"log"

	sentinel "sentinel"
)

// figure3 builds the fragment of Figure 3(a):
//
//	A: jsr            (irreversible)
//	B: r5 = mem(r3+0)
//	C: if (r5==0) goto L1
//	D: r1 = mem(r6+0) (the speculative candidate)
//	E: r2 = r2+1      (self-modifying: split by the renaming transformation)
//	F: mem(r4+0) = r7 (may alias B's location: must follow D's sentinel)
//	G: r8 = r1+1      (D's sentinel)
//	H: r9 = mem(r2+0)
func figure3() (*sentinel.Program, *sentinel.Memory) {
	p := sentinel.NewProgram()
	p.AddBlock("entry",
		sentinel.LI(sentinel.R(3), 0x1000),
		sentinel.LI(sentinel.R(6), 0x2000),
		sentinel.LI(sentinel.R(4), 0x3000),
		sentinel.LI(sentinel.R(2), 0x3FF0),
		sentinel.LI(sentinel.R(7), 7),
	)
	sb := p.AddBlock("main",
		sentinel.JSR("putint", sentinel.R(7)),                        // A
		sentinel.LOAD(sentinel.Ld, sentinel.R(5), sentinel.R(3), 0),  // B
		sentinel.BRI(sentinel.Beq, sentinel.R(5), 0, "L1"),           // C
		sentinel.LOAD(sentinel.Ld, sentinel.R(1), sentinel.R(6), 0),  // D
		sentinel.ALUI(sentinel.Add, sentinel.R(2), sentinel.R(2), 1), // E
		sentinel.STORE(sentinel.St, sentinel.R(4), 0, sentinel.R(7)), // F
		sentinel.ALUI(sentinel.Add, sentinel.R(8), sentinel.R(1), 1), // G
		sentinel.LOAD(sentinel.Ld, sentinel.R(9), sentinel.R(2), 0),  // H
		sentinel.ALU(sentinel.Add, sentinel.R(8), sentinel.R(8), sentinel.R(9)),
		sentinel.JSR("putint", sentinel.R(8)),
		sentinel.HALT(),
	)
	sb.Superblock = true
	p.AddBlock("L1", sentinel.HALT())
	m := sentinel.NewMemory()
	m.Map("b-data", 0x1000, 8)
	m.Map("heap", 0x2000, 8)
	m.Map("f-data", 0x3000, 0x1000)
	m.Write(0x1000, 8, 1)   // r5 != 0: fall through
	m.Write(0x2000, 8, 500) // D's datum
	return p, m
}

func main() {
	p, m := figure3()
	md := sentinel.BaseMachine(8, sentinel.Sentinel).WithRecovery()

	sched, stats, err := sentinel.Schedule(p, md)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Figure 3: recovery-constrained schedule ===")
	fmt.Printf("renaming transformations applied: %d (E split into add+move)\n", stats.Renamed)
	fmt.Printf("forced constraint violations: %d (must be 0 for restartability)\n\n", stats.ForcedIssues)
	main := sched.Block("main")
	for _, in := range main.Instrs {
		fmt.Printf("  [%d.%d] %v\n", in.Cycle, in.Slot, in)
	}

	fmt.Println("\n=== Page-fault retry ===")
	heap := m.Segment("heap")
	heap.Present = false // page D's target out
	fmt.Println("heap segment paged out; running...")

	recoveries := 0
	res, err := sentinel.Simulate(sched, md, m, sentinel.SimOptions{
		Handler: func(exc sentinel.Exception, cpu *sentinel.CPU) bool {
			recoveries++
			in, _, _ := sched.InstrAt(exc.ReportedPC)
			fmt.Printf("  %v reported for pc %d: %v\n", exc.Kind, exc.ReportedPC, in)
			fmt.Println("  handler: mapping the page in and requesting re-execution")
			heap.Present = true
			return true
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecovered %d time(s); output = %v (want [7 501]: the speculative load's 500+1)\n",
		recoveries, res.Out)
	fmt.Printf("cycles = %d, dynamic instructions = %d\n", res.Cycles, res.Instrs)
}
