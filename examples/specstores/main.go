// Speculative stores (§4): a store is hoisted above a data-dependent branch
// into the store buffer as a probationary entry. On the fall-through path a
// confirm_store releases it to memory; on the taken path (a compile-time
// misprediction) the probationary entry is cancelled and memory is never
// touched. A faulting speculative store records its exception in the buffer
// entry and the confirm reports it precisely.
package main

import (
	"fmt"
	"log"

	sentinel "sentinel"
)

// build creates: load a flag; if flag != 0 skip; store 77 to out. The store
// sits below the data-dependent branch, so only the SentinelStores model can
// hoist it.
func build(outBase int64) (*sentinel.Program, *sentinel.Memory) {
	p := sentinel.NewProgram()
	p.AddBlock("entry",
		sentinel.LI(sentinel.R(1), 0x1000),  // flag address
		sentinel.LI(sentinel.R(2), outBase), // output address
		sentinel.LI(sentinel.R(3), 77),
	)
	sb := p.AddBlock("main",
		sentinel.LOAD(sentinel.Ld, sentinel.R(4), sentinel.R(1), 0),
		sentinel.BRI(sentinel.Bne, sentinel.R(4), 0, "skip"),
		sentinel.STORE(sentinel.St, sentinel.R(2), 0, sentinel.R(3)),
		sentinel.HALT(),
	)
	sb.Superblock = true
	p.AddBlock("skip",
		sentinel.JSR("putint", sentinel.R(4)),
		sentinel.HALT(),
	)
	m := sentinel.NewMemory()
	m.Map("flag", 0x1000, 8)
	if outBase == 0x2000 {
		m.Map("out", 0x2000, 8)
	}
	return p, m
}

func run(title string, outBase, flag int64) {
	fmt.Printf("=== %s ===\n", title)
	p, m := build(outBase)
	m.Write(0x1000, 8, uint64(flag))
	md := sentinel.BaseMachine(8, sentinel.SentinelStores)
	sched, stats, err := sentinel.Schedule(p, md)
	if err != nil {
		log.Fatal(err)
	}
	if stats.Confirms > 0 {
		fmt.Printf("store speculated above the branch; %d confirm_store inserted\n", stats.Confirms)
	}
	for _, in := range sched.Block("main").Instrs {
		fmt.Printf("  [%d.%d] %v\n", in.Cycle, in.Slot, in)
	}
	res, err := sentinel.Simulate(sched, md, m, sentinel.SimOptions{})
	if exc, ok := sentinel.Unhandled(err); ok {
		in, _, _ := sched.InstrAt(exc.ReportedPC)
		fmt.Printf("exception signalled at confirm: %v, reported cause: %v (the store)\n\n", exc.Kind, in)
		return
	}
	if err != nil {
		log.Fatal(err)
	}
	v, _ := m.Read(0x2000, 8)
	if outBase != 0x2000 {
		v = 0
	}
	fmt.Printf("completed: out-cell = %d, output = %v, cycles = %d\n\n", v, res.Out, res.Cycles)
}

func main() {
	// Fall-through path: the probationary entry is confirmed and drains to
	// memory (out-cell becomes 77).
	run("confirmed: branch falls through, store commits", 0x2000, 0)

	// Taken path: the branch is a (compile-time) misprediction; the
	// probationary entry is cancelled and memory is untouched.
	run("cancelled: branch taken, probationary entry discarded", 0x2000, 1)

	// Faulting speculative store: the output address is unmapped. On the
	// fall-through path the store WAS architecturally required, so the
	// confirm signals the exception and reports the store's PC (Table 2).
	run("faulting: unmapped target, confirm reports the store", 0x9000, 0)
}
