// Exceptions: the paper's Figure 1 / Figure 2 walkthrough. The code
// fragment of Figure 1(a) is scheduled under sentinel scheduling; we then
// inject a memory fault at instruction B and show (a) the first
// non-speculative consumer signals and reports B's exact PC when the branch
// falls through, (b) the exception is completely ignored when the branch is
// taken (B should never have executed), and (c) general percolation
// silently corrupts the result instead.
package main

import (
	"fmt"
	"log"

	sentinel "sentinel"
)

// figure1 builds the fragment of Figure 1(a); r2 is B's base address AND
// the branch condition, r4 is C's base.
//
//	A: if (r2==0) goto L1
//	B: r1 = mem(r2+0)
//	C: r3 = mem(r4+0)
//	D: r4 = r1+1
//	E: r5 = r3*9
//	F: mem(r2+8) = r4
func figure1(r2 int64) (*sentinel.Program, *sentinel.Memory) {
	p := sentinel.NewProgram()
	p.AddBlock("entry",
		sentinel.LI(sentinel.R(2), r2),
		sentinel.LI(sentinel.R(4), 0x2000),
	)
	sb := p.AddBlock("main",
		sentinel.BRI(sentinel.Beq, sentinel.R(2), 0, "L1"),           // A
		sentinel.LOAD(sentinel.Ld, sentinel.R(1), sentinel.R(2), 0),  // B
		sentinel.LOAD(sentinel.Ld, sentinel.R(3), sentinel.R(4), 0),  // C
		sentinel.ALUI(sentinel.Add, sentinel.R(4), sentinel.R(1), 1), // D
		sentinel.ALUI(sentinel.Mul, sentinel.R(5), sentinel.R(3), 9), // E
		sentinel.STORE(sentinel.St, sentinel.R(2), 8, sentinel.R(4)), // F
		sentinel.HALT(),
	)
	sb.Superblock = true
	p.AddBlock("L1",
		sentinel.JSR("putint", sentinel.R(0)),
		sentinel.HALT(),
	)
	m := sentinel.NewMemory()
	m.Map("c-data", 0x2000, 64)
	m.Write(0x2000, 8, 22)
	return p, m
}

func schedule(p *sentinel.Program, model sentinel.Model) (*sentinel.Program, sentinel.Machine) {
	md := sentinel.BaseMachine(8, model)
	sched, stats, err := sentinel.Schedule(p, md)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled under %v: %d speculative, %d explicit sentinels\n",
		model, stats.Speculative, stats.Sentinels)
	return sched, md
}

func main() {
	fmt.Println("=== Figure 1: the schedule ===")
	p, _ := figure1(0x9000)
	sched, md := schedule(p, sentinel.Sentinel)
	for _, b := range sched.Blocks {
		fmt.Printf("%s:\n", b.Label)
		for _, in := range b.Instrs {
			fmt.Printf("  [%d.%d] %v\n", in.Cycle, in.Slot, in)
		}
	}

	fmt.Println("\n=== Figure 2(a): branch falls through; B's fault must be reported ===")
	// r2 = 0x9000 is unmapped: B faults. r2 != 0, so A is not taken and B
	// architecturally executes: the exception MUST be signalled, and the
	// reported PC must be B's.
	p1, m1 := figure1(0x9000)
	sched1, _, err := sentinel.Schedule(p1, md)
	if err != nil {
		log.Fatal(err)
	}
	_, err = sentinel.Simulate(sched1, md, m1, sentinel.SimOptions{})
	if exc, ok := sentinel.Unhandled(err); ok {
		in, blk, _ := sched1.InstrAt(exc.ReportedPC)
		by, _, _ := sched1.InstrAt(exc.ByPC)
		fmt.Printf("signalled: %v\n  reported instruction: %v (block %s)\n  signalled by sentinel: %v\n",
			exc.Kind, in, blk.Label, by)
	} else {
		log.Fatalf("expected an exception, got err=%v", err)
	}

	fmt.Println("\n=== Figure 2(b): branch taken; the same fault must be IGNORED ===")
	// r2 = 0: A is taken, so B should never have executed. Its speculative
	// fault is recorded in r1's tag but never consumed: correct execution.
	p2, m2 := figure1(0)
	sched2, _, err := sentinel.Schedule(p2, md)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sentinel.Simulate(sched2, md, m2, sentinel.SimOptions{})
	if err != nil {
		log.Fatalf("taken-path run must succeed: %v", err)
	}
	fmt.Printf("completed cleanly: out=%v, cycles=%d (exception correctly ignored)\n",
		res.Out, res.Cycles)

	fmt.Println("\n=== Contrast: general percolation loses the exception ===")
	p3, m3 := figure1(0x9000)
	sched3, _, err := sentinel.Schedule(p3, sentinel.BaseMachine(8, sentinel.General))
	if err != nil {
		log.Fatal(err)
	}
	res3, err := sentinel.Simulate(sched3, sentinel.BaseMachine(8, sentinel.General), m3, sentinel.SimOptions{})
	switch exc, ok := sentinel.Unhandled(err); {
	case ok:
		// B's fault was swallowed (garbage written to r1); execution only
		// trapped later, at a different instruction — the original cause is
		// unidentifiable ("has difficulties determining the original
		// excepting instruction", §2.4).
		in, _, _ := sched3.InstrAt(exc.ReportedPC)
		fmt.Printf("B's exception was silently swallowed; a LATER instruction trapped instead:\n")
		fmt.Printf("  reported: %v (pc %d) — not the real cause (B)\n", in, exc.ReportedPC)
	case err != nil:
		log.Fatal(err)
	default:
		fmt.Printf("completed WITHOUT signalling; memory now contains garbage-derived data\n")
		fmt.Printf("(cycles=%d — fast, silent, and wrong: the §2.4 problem sentinel scheduling fixes)\n",
			res3.Cycles)
	}
}
