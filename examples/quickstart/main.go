// Quickstart: build a small MIR program, compile it with sentinel
// scheduling for an 8-issue processor, simulate it, and compare against the
// baseline speculation models.
package main

import (
	"fmt"
	"log"

	sentinel "sentinel"
)

func main() {
	// A counted loop summing 64 array elements, with a data-dependent branch
	// skipping negative values — the kind of loop where speculative loads pay.
	p := sentinel.NewProgram()
	p.AddBlock("entry",
		sentinel.LI(sentinel.R(1), 0x1000), // array base
		sentinel.LI(sentinel.R(2), 64),     // length
		sentinel.LI(sentinel.R(3), 0),      // sum
		sentinel.LI(sentinel.R(4), 0),      // i
	)
	p.AddBlock("loop",
		sentinel.BR(sentinel.Bge, sentinel.R(4), sentinel.R(2), "done"),
	)
	p.AddBlock("body",
		sentinel.LOAD(sentinel.Ld, sentinel.R(5), sentinel.R(1), 0),
		sentinel.BRI(sentinel.Blt, sentinel.R(5), 0, "skip"),
	)
	p.AddBlock("acc",
		sentinel.ALU(sentinel.Add, sentinel.R(3), sentinel.R(3), sentinel.R(5)),
	)
	p.AddBlock("skip",
		sentinel.ALUI(sentinel.Add, sentinel.R(1), sentinel.R(1), 8),
		sentinel.ALUI(sentinel.Add, sentinel.R(4), sentinel.R(4), 1),
		sentinel.JMP("loop"),
	)
	p.AddBlock("done",
		sentinel.JSR("putint", sentinel.R(3)),
		sentinel.HALT(),
	)

	// Input data: mostly positive values, a few negative.
	m := sentinel.NewMemory()
	m.Map("array", 0x1000, 65*8)
	for i := 0; i < 64; i++ {
		v := int64(i * 3)
		if i%11 == 0 {
			v = -v
		}
		m.Write(0x1000+int64(i)*8, 8, uint64(v))
	}

	// Reference run (sequential interpreter): the ground truth.
	ref, err := sentinel.ProfileRun(p, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference result: %v (%d instructions)\n\n", ref.Out, ref.Instrs)

	// Compile and simulate under each speculation model.
	fmt.Printf("%-16s %8s %9s\n", "model", "cycles", "speedup")
	var base int64
	for _, model := range []sentinel.Model{
		sentinel.Restricted, sentinel.General,
		sentinel.Sentinel, sentinel.SentinelStores, sentinel.Boosting,
	} {
		md := sentinel.BaseMachine(8, model)
		sched, stats, err := sentinel.Compile(p, m, md, sentinel.SuperblockOptions{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sentinel.Simulate(sched, md, m.Clone(), sentinel.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if res.MemSum != ref.MemSum || res.Out[0] != ref.Out[0] {
			log.Fatalf("%v: result mismatch!", model)
		}
		if model == sentinel.Restricted {
			base = res.Cycles
		}
		fmt.Printf("%-16v %8d %8.2fx", model, res.Cycles, float64(base)/float64(res.Cycles))
		if stats.Sentinels > 0 || stats.Confirms > 0 {
			fmt.Printf("   (%d speculative, %d checks, %d confirms)",
				stats.Speculative, stats.Sentinels, stats.Confirms)
		} else if stats.Speculative > 0 {
			fmt.Printf("   (%d speculative)", stats.Speculative)
		}
		fmt.Println()
	}
}
