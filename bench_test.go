package sentinel

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index):
//
//	go test -bench=Figure4 .       # Figure 4: sentinel vs restricted
//	go test -bench=Figure5 .       # Figure 5: general vs sentinel vs stores
//	go test -bench=Table  .        # Table 1/2 semantics microbenchmarks
//	go test -bench=Kernel .        # per-benchmark compile+simulate
//	go test -bench=. -benchmem .   # everything
//
// Reported custom metrics: speedups are relative to the issue-1
// restricted-percolation base machine, exactly as in the paper (§5.2).

import (
	"fmt"
	"testing"

	"sentinel/internal/eval"
	"sentinel/internal/ir"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/obs"
	"sentinel/internal/prog"
	"sentinel/internal/sim"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

// BenchmarkTable1Semantics measures the exception-tagged register file's
// per-instruction cost: a speculative faulting load (tag set), a
// propagating add, and the sentinel path, per iteration.
func BenchmarkTable1Semantics(b *testing.B) {
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(2), 0x9000), // unmapped: the load faults
		ir.LI(ir.R(8), 0),
	)
	spec := ir.LOAD(ir.Ld, ir.R(1), ir.R(2), 0)
	spec.Spec = true
	prop := ir.ALUI(ir.Add, ir.R(3), ir.R(1), 1)
	prop.Spec = true
	p.AddBlock("loop",
		spec, prop,
		ir.ALUI(ir.Add, ir.R(8), ir.R(8), 1),
		ir.BRI(ir.Blt, ir.R(8), 1000, "loop"),
	)
	p.AddBlock("done", ir.HALT())
	p.Layout()
	md := machine.Base(8, machine.Sentinel)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(p, md, mem.New(), sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Semantics measures probationary store-buffer insertion,
// confirmation and cancellation throughput.
func BenchmarkTable2Semantics(b *testing.B) {
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(2), 0x1000),
		ir.LI(ir.R(3), 7),
		ir.LI(ir.R(8), 0),
	)
	st := ir.STORE(ir.St, ir.R(2), 0, ir.R(3))
	st.Spec = true
	p.AddBlock("loop",
		st,
		ir.CONFIRM(0),
		ir.ALUI(ir.Add, ir.R(8), ir.R(8), 1),
		ir.BRI(ir.Blt, ir.R(8), 1000, "loop"),
	)
	p.AddBlock("done", ir.HALT())
	p.Layout()
	md := machine.Base(8, machine.SentinelStores)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := mem.New()
		m.Map("d", 0x1000, 8)
		if _, err := sim.Run(p, md, m, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4: speedups of sentinel scheduling vs
// restricted percolation at issue 2, 4 and 8 over all 17 kernels. The
// paper's headline group improvements are reported as custom metrics.
func BenchmarkFigure4(b *testing.B) {
	models := []machine.Model{machine.Restricted, machine.Sentinel}
	var rs []*eval.BenchResult
	for i := 0; i < b.N; i++ {
		var err error
		rs, err = eval.RunAll(models, eval.Widths, superblock.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(eval.GroupImprovement(rs, false, machine.Sentinel, machine.Restricted, 8), "S/R-nonnum-%@8")
	b.ReportMetric(eval.GroupImprovement(rs, true, machine.Sentinel, machine.Restricted, 8), "S/R-num-%@8")
	b.ReportMetric(eval.GroupAverage(rs, false, machine.Sentinel, 8), "S-nonnum-speedup@8")
	b.ReportMetric(eval.GroupAverage(rs, true, machine.Sentinel, 8), "S-num-speedup@8")
}

// BenchmarkFigure5 regenerates Figure 5: general percolation, sentinel
// scheduling and sentinel scheduling with speculative stores.
func BenchmarkFigure5(b *testing.B) {
	models := []machine.Model{machine.General, machine.Sentinel, machine.SentinelStores}
	var rs []*eval.BenchResult
	for i := 0; i < b.N; i++ {
		var err error
		rs, err = eval.RunAll(models, eval.Widths, superblock.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(eval.GroupImprovement(rs, false, machine.SentinelStores, machine.Sentinel, 8), "T/S-nonnum-%@8")
	b.ReportMetric(eval.GroupImprovement(rs, true, machine.SentinelStores, machine.Sentinel, 8), "T/S-num-%@8")
	b.ReportMetric(eval.GroupImprovement(rs, false, machine.Sentinel, machine.General, 8), "S/G-nonnum-%@8")
}

// BenchmarkRunnerAll measures the concurrent evaluation engine on the full
// Figure 4+5 cell matrix (17 benchmarks × 4 models × 3 widths + bases). A
// fresh Runner per iteration, so per-benchmark artifact caching is measured
// but nothing is reused across iterations. Compare with BenchmarkFigure4 +
// BenchmarkFigure5, which walk the same matrix through the serial path.
func BenchmarkRunnerAll(b *testing.B) {
	models := []machine.Model{machine.Restricted, machine.General,
		machine.Sentinel, machine.SentinelStores}
	var rs []*eval.BenchResult
	for i := 0; i < b.N; i++ {
		var err error
		rs, err = eval.NewRunner(0).RunAll(models, eval.Widths, superblock.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(eval.GroupImprovement(rs, false, machine.Sentinel, machine.Restricted, 8), "S/R-nonnum-%@8")
}

// BenchmarkRunAllUntraced / BenchmarkRunAllTraced are the observability
// overhead guard: the same full Figure 4+5 matrix through the Runner with
// metrics disabled (the nil fast path every normal figure regeneration
// takes) and with a live metrics registry attached. The delta is the
// observer cost; EXPERIMENTS.md records it and it must stay under 2%.
func BenchmarkRunAllUntraced(b *testing.B) {
	models := []machine.Model{machine.Restricted, machine.General,
		machine.Sentinel, machine.SentinelStores}
	for i := 0; i < b.N; i++ {
		if _, err := eval.NewRunner(0).RunAll(models, eval.Widths, superblock.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllTraced(b *testing.B) {
	models := []machine.Model{machine.Restricted, machine.General,
		machine.Sentinel, machine.SentinelStores}
	var cells int64
	for i := 0; i < b.N; i++ {
		r := eval.NewRunner(0)
		reg := obs.NewRegistry()
		r.SetMetrics(reg)
		if _, err := r.RunAll(models, eval.Widths, superblock.Options{}); err != nil {
			b.Fatal(err)
		}
		cells = reg.Histogram("runner.cell_ns").Snapshot().Count
	}
	b.ReportMetric(float64(cells), "cells-observed")
}

// BenchmarkKernel compiles and simulates each benchmark kernel under
// sentinel scheduling at issue 8, reporting cycles and simulated IPC.
func BenchmarkKernel(b *testing.B) {
	for _, w := range workload.All() {
		b.Run(w.Name, func(b *testing.B) {
			md := machine.Base(8, machine.Sentinel)
			var cell eval.Cell
			for i := 0; i < b.N; i++ {
				var err error
				cell, err = eval.Measure(w, md, superblock.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cell.Cycles), "cycles")
			b.ReportMetric(float64(cell.Instrs)/float64(cell.Cycles), "ipc")
		})
	}
}

// BenchmarkScheduler measures compile throughput: instructions scheduled
// per second over the full kernel suite.
func BenchmarkScheduler(b *testing.B) {
	type job struct {
		p *prog.Program
	}
	var jobs []job
	total := 0
	for _, w := range workload.All() {
		p, m := w.Build()
		p.Layout()
		ref, err := prog.Run(p, m, prog.Options{Collect: true})
		if err != nil {
			b.Fatal(err)
		}
		f := superblock.Form(p, ref.Profile, superblock.Options{})
		f.Layout()
		for _, blk := range f.Blocks {
			total += len(blk.Instrs)
		}
		jobs = append(jobs, job{f})
	}
	md := machine.Base(8, machine.SentinelStores)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range jobs {
			if _, _, err := coreSchedule(j.p, md); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(total*b.N)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkSimulator measures simulation throughput (dynamic instructions
// per second) on the largest kernel.
func BenchmarkSimulator(b *testing.B) {
	w, _ := workload.ByName("wc")
	md := machine.Base(8, machine.Sentinel)
	p, m := w.Build()
	p.Layout()
	ref, err := prog.Run(p, m.Clone(), prog.Options{Collect: true})
	if err != nil {
		b.Fatal(err)
	}
	f := superblock.Form(p, ref.Profile, superblock.Options{})
	f.Layout()
	sched, _, err := coreSchedule(f, md)
	if err != nil {
		b.Fatal(err)
	}
	var instrs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, mm := w.Build()
		res, err := sim.Run(sched, md, mm, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// BenchmarkRecoveryCost quantifies the §3.7 restartable-sequence
// constraints (the experiment the paper left as future work): average
// slowdown of recovery-constrained sentinel scheduling at issue 8.
func BenchmarkRecoveryCost(b *testing.B) {
	var slow float64
	for i := 0; i < b.N; i++ {
		slow = 0
		n := 0
		for _, w := range workload.All() {
			s, err := eval.Measure(w, machine.Base(8, machine.Sentinel), superblock.Options{})
			if err != nil {
				b.Fatal(err)
			}
			r, err := eval.Measure(w, machine.Base(8, machine.Sentinel).WithRecovery(), superblock.Options{})
			if err != nil {
				b.Fatal(err)
			}
			slow += float64(r.Cycles) / float64(s.Cycles)
			n++
		}
		slow = (slow/float64(n) - 1) * 100
	}
	b.ReportMetric(slow, "recovery-slowdown-%")
}

// BenchmarkStoreBufferSweep measures sentinel+stores at issue 8 across
// store-buffer sizes (the §4.2 N-1 separation constraint's reach).
func BenchmarkStoreBufferSweep(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				cycles = 0
				for _, name := range []string{"cmp", "espresso", "cccp"} {
					w, _ := workload.ByName(name)
					md := machine.Base(8, machine.SentinelStores)
					md.StoreBuffer = n
					c, err := eval.Measure(w, md, superblock.Options{})
					if err != nil {
						b.Fatal(err)
					}
					cycles += c.Cycles
				}
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkBoosting compares the §2.3 instruction-boosting model against
// sentinel scheduling at issue 8, reporting the suite-mean cycle ratio per
// shadow-level budget (boosting should approach 1.0 as levels grow).
func BenchmarkBoosting(b *testing.B) {
	for _, levels := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("levels%d", levels), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				ratio = 0
				n := 0
				for _, w := range workload.All() {
					md := machine.Base(8, machine.Boosting)
					md.BoostLevels = levels
					boosted, err := eval.Measure(w, md, superblock.Options{})
					if err != nil {
						b.Fatal(err)
					}
					sent, err := eval.Measure(w, machine.Base(8, machine.Sentinel), superblock.Options{})
					if err != nil {
						b.Fatal(err)
					}
					ratio += float64(boosted.Cycles) / float64(sent.Cycles)
					n++
				}
				ratio /= float64(n)
			}
			b.ReportMetric(ratio, "boost/sentinel-cycles")
		})
	}
}
