package sentinel

import (
	"fmt"
	"testing"
)

// testPrograms returns a set of small programs with their input memories,
// covering loops, biased branches, FP chains, stores below branches, and
// pointer chasing.
func testPrograms() map[string]func() (*Program, *Memory) {
	return map[string]func() (*Program, *Memory){
		"sumloop":   sumLoopProgram,
		"diamond":   diamondProgram,
		"fpchain":   fpChainProgram,
		"storeloop": storeLoopProgram,
		"chase":     chaseProgram,
	}
}

func sumLoopProgram() (*Program, *Memory) {
	p := NewProgram()
	p.AddBlock("entry",
		LI(R(1), 0x1000), LI(R(2), 25), LI(R(3), 0), LI(R(4), 0))
	p.AddBlock("loop", BR(Bge, R(4), R(2), "done"))
	p.AddBlock("body",
		LOAD(Ld, R(5), R(1), 0),
		ALU(Add, R(3), R(3), R(5)),
		ALUI(Add, R(1), R(1), 8),
		ALUI(Add, R(4), R(4), 1),
		JMP("loop"))
	p.AddBlock("done", JSR("putint", R(3)), HALT())
	m := NewMemory()
	m.Map("data", 0x1000, 26*8)
	for i := 0; i < 25; i++ {
		m.Write(0x1000+int64(i)*8, 8, uint64(i*7+3))
	}
	return p, m
}

func diamondProgram() (*Program, *Memory) {
	p := NewProgram()
	p.AddBlock("entry",
		LI(R(1), 0x1000), LI(R(2), 40), LI(R(3), 0), LI(R(7), 0))
	p.AddBlock("head",
		BR(Bge, R(3), R(2), "exit"),
		LOAD(Ld, R(4), R(1), 0),
		BRI(Bne, R(4), 0, "cold"))
	p.AddBlock("hot", ALUI(Add, R(7), R(7), 1))
	p.AddBlock("join",
		ALUI(Add, R(1), R(1), 8),
		ALUI(Add, R(3), R(3), 1),
		JMP("head"))
	p.AddBlock("cold",
		ALU(Add, R(7), R(7), R(4)),
		ALUI(Mul, R(7), R(7), 3),
		JMP("join"))
	p.AddBlock("exit", JSR("putint", R(7)), HALT())
	m := NewMemory()
	m.Map("data", 0x1000, 41*8)
	m.Write(0x1000+8*11, 8, 5)
	m.Write(0x1000+8*29, 8, 9)
	return p, m
}

func fpChainProgram() (*Program, *Memory) {
	p := NewProgram()
	p.AddBlock("entry",
		LI(R(1), 0x2000), LI(R(2), 16), LI(R(3), 0),
		LI(R(9), 1), UN(Cvif, F(1), R(9))) // f1 = 1.0 accumulator
	p.AddBlock("loop", BR(Bge, R(3), R(2), "done"))
	p.AddBlock("body",
		LOAD(Fld, F(2), R(1), 0),
		ALU(Fadd, F(3), F(2), F(1)),
		ALU(Fmul, F(1), F(3), F(2)),
		ALU(Fdiv, F(1), F(1), F(3)),
		ALUI(Add, R(1), R(1), 8),
		ALUI(Add, R(3), R(3), 1),
		JMP("loop"))
	p.AddBlock("done",
		UN(Cvfi, R(5), F(1)),
		JSR("putint", R(5)),
		HALT())
	m := NewMemory()
	m.Map("data", 0x2000, 17*8)
	for i := 0; i < 16; i++ {
		// Bit patterns of small positive floats: 2.0 + i.
		f := float64(2 + i)
		m.Write(0x2000+int64(i)*8, 8, floatBits(f))
	}
	return p, m
}

func floatBits(f float64) uint64 {
	// local helper to avoid importing math in multiple tests
	return mathFloat64bits(f)
}

func storeLoopProgram() (*Program, *Memory) {
	// cmp-like: compare two arrays, store result flags; stores sit below a
	// data-dependent branch.
	p := NewProgram()
	p.AddBlock("entry",
		LI(R(1), 0x1000), LI(R(2), 0x2000), LI(R(3), 0x3000),
		LI(R(4), 30), LI(R(5), 0), LI(R(9), 0))
	p.AddBlock("loop", BR(Bge, R(5), R(4), "done"))
	p.AddBlock("body",
		LOAD(Ld, R(6), R(1), 0),
		LOAD(Ld, R(7), R(2), 0),
		BR(Beq, R(6), R(7), "same"))
	p.AddBlock("diff",
		ALUI(Add, R(9), R(9), 1),
		STORE(St, R(3), 0, R(6)))
	p.AddBlock("same",
		STORE(St, R(3), 8, R(7)),
		ALUI(Add, R(1), R(1), 8),
		ALUI(Add, R(2), R(2), 8),
		ALUI(Add, R(3), R(3), 16),
		ALUI(Add, R(5), R(5), 1),
		JMP("loop"))
	p.AddBlock("done", JSR("putint", R(9)), HALT())
	m := NewMemory()
	m.Map("a", 0x1000, 31*8)
	m.Map("b", 0x2000, 31*8)
	m.Map("out", 0x3000, 31*16+16)
	for i := 0; i < 30; i++ {
		m.Write(0x1000+int64(i)*8, 8, uint64(i%7))
		m.Write(0x2000+int64(i)*8, 8, uint64(i%5))
	}
	return p, m
}

func chaseProgram() (*Program, *Memory) {
	// xlisp-like pointer chasing: follow a linked list, sum payloads.
	p := NewProgram()
	p.AddBlock("entry",
		LI(R(1), 0x1000), // head pointer cell
		LOAD(Ld, R(2), R(1), 0),
		LI(R(3), 0))
	p.AddBlock("loop", BRI(Beq, R(2), 0, "done"))
	p.AddBlock("body",
		LOAD(Ld, R(4), R(2), 8), // payload
		ALU(Add, R(3), R(3), R(4)),
		LOAD(Ld, R(2), R(2), 0), // next
		JMP("loop"))
	p.AddBlock("done", JSR("putint", R(3)), HALT())
	m := NewMemory()
	m.Map("heap", 0x1000, 4096)
	// Build a 40-node list at 0x1100, nodes 16 bytes apart.
	m.Write(0x1000, 8, 0x1100)
	for i := 0; i < 40; i++ {
		node := int64(0x1100 + i*16)
		next := uint64(0)
		if i < 39 {
			next = uint64(node + 16)
		}
		m.Write(node, 8, next)
		m.Write(node+8, 8, uint64(i*i+1))
	}
	return p, m
}

// TestDifferentialAllModels is the central correctness property: for every
// test program, every scheduling model, and every issue width, the fully
// compiled program (profile -> superblock formation -> scheduling) must
// produce the identical architectural result as the sequential reference
// interpreter.
func TestDifferentialAllModels(t *testing.T) {
	models := []Model{Restricted, General, Sentinel, SentinelStores, Boosting}
	widths := []int{1, 2, 4, 8}
	for name, gen := range testPrograms() {
		p, m := gen()
		ref, err := ProfileRun(p, m)
		if err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		for _, model := range models {
			for _, w := range widths {
				t.Run(fmt.Sprintf("%s/%v/w%d", name, model, w), func(t *testing.T) {
					md := BaseMachine(w, model)
					sched, _, err := Compile(p, m, md, SuperblockOptions{})
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					run := m.Clone()
					res, err := Simulate(sched, md, run, SimOptions{})
					if err != nil {
						t.Fatalf("simulate: %v\n%s", err, sched)
					}
					if res.MemSum != ref.MemSum {
						t.Errorf("memory checksum mismatch: %#x vs %#x", res.MemSum, ref.MemSum)
					}
					if len(res.Out) != len(ref.Out) {
						t.Fatalf("output %v vs %v", res.Out, ref.Out)
					}
					for i := range res.Out {
						if res.Out[i] != ref.Out[i] {
							t.Errorf("out[%d] = %d, want %d", i, res.Out[i], ref.Out[i])
						}
					}
					if res.Cycles <= 0 {
						t.Errorf("cycles = %d", res.Cycles)
					}
				})
			}
		}
	}
}

// TestSpeedupOrdering checks the coarse performance relationships the paper
// reports: wider machines are no slower, and on branchy load-dependent code
// the sentinel model beats restricted percolation at width 8.
func TestSpeedupOrdering(t *testing.T) {
	cycles := func(name string, gen func() (*Program, *Memory), model Model, w int) int64 {
		p, m := gen()
		md := BaseMachine(w, model)
		sched, _, err := Compile(p, m, md, SuperblockOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := Simulate(sched, md, m.Clone(), SimOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return res.Cycles
	}
	for name, gen := range testPrograms() {
		w1 := cycles(name, gen, Restricted, 1)
		w8r := cycles(name, gen, Restricted, 8)
		w8s := cycles(name, gen, Sentinel, 8)
		if w8r > w1 {
			t.Errorf("%s: restricted w8 (%d) slower than w1 (%d)", name, w8r, w1)
		}
		if w8s > w8r {
			t.Errorf("%s: sentinel w8 (%d) slower than restricted w8 (%d)", name, w8s, w8r)
		}
	}
	// Pointer chasing: branch conditions depend on loads, so restricted
	// percolation serializes; sentinel must be strictly faster at width 8.
	if r, s := cycles("chase", chaseProgram, Restricted, 8), cycles("chase", chaseProgram, Sentinel, 8); s >= r {
		t.Errorf("chase: sentinel w8 (%d) must beat restricted w8 (%d)", s, r)
	}
}
