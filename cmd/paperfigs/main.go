// Command paperfigs regenerates every table and figure of the paper's
// evaluation on the simulated machine:
//
//	paperfigs -fig4 -fig5          # the two headline figures
//	paperfigs -table3              # machine latencies
//	paperfigs -overhead            # sentinel-insertion ablation
//	paperfigs -recovery            # recovery-constraint cost (extension)
//	paperfigs -buffer              # store-buffer size sweep (extension)
//	paperfigs -all                 # everything
package main

import (
	"flag"
	"fmt"
	"os"

	"sentinel/internal/eval"
	"sentinel/internal/machine"
	"sentinel/internal/superblock"
)

func main() {
	fig4 := flag.Bool("fig4", false, "Figure 4: sentinel vs restricted percolation")
	fig5 := flag.Bool("fig5", false, "Figure 5: general vs sentinel vs sentinel+stores")
	table3 := flag.Bool("table3", false, "Table 3: instruction latencies")
	overhead := flag.Bool("overhead", false, "sentinel overhead ablation")
	recovery := flag.Bool("recovery", false, "recovery-constraint cost (extension)")
	buffer := flag.Bool("buffer", false, "store-buffer size sweep (extension)")
	faults := flag.Bool("faults", false, "fault-injection study (extension)")
	sharing := flag.Bool("sharing", false, "shared-sentinel ablation (extension)")
	boosting := flag.Bool("boosting", false, "instruction boosting vs sentinel (extension)")
	all := flag.Bool("all", false, "run everything")
	flag.Parse()

	if *all {
		*fig4, *fig5, *table3, *overhead, *recovery, *buffer, *faults, *sharing, *boosting = true, true, true, true, true, true, true, true, true
	}
	if !*fig4 && !*fig5 && !*table3 && !*overhead && !*recovery && !*buffer && !*faults && !*sharing && !*boosting {
		flag.Usage()
		os.Exit(2)
	}

	if *table3 {
		fmt.Println(eval.Table3())
	}

	var results []*eval.BenchResult
	need := *fig4 || *fig5 || *overhead
	if need {
		var err error
		results, err = eval.RunAll(
			[]machine.Model{machine.Restricted, machine.General,
				machine.Sentinel, machine.SentinelStores},
			eval.Widths, superblock.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	if *fig4 {
		fmt.Println(eval.Figure4(results))
	}
	if *fig5 {
		fmt.Println(eval.Figure5(results))
	}
	if *overhead {
		fmt.Println(eval.SentinelOverheadTable(results, 8))
	}
	if *recovery {
		s, err := eval.RecoveryCost()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(s)
	}
	if *buffer {
		s, err := eval.StoreBufferSweep()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(s)
	}
	if *faults {
		s, err := eval.FaultInjection()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(s)
	}
	if *sharing {
		s, err := eval.SharingAblation()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(s)
	}
	if *boosting {
		s, err := eval.BoostingComparison()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(s)
	}
}
