// Command paperfigs regenerates every table and figure of the paper's
// evaluation on the simulated machine:
//
//	paperfigs -fig4 -fig5          # the two headline figures
//	paperfigs -table3              # machine latencies
//	paperfigs -overhead            # sentinel-insertion ablation
//	paperfigs -recovery            # recovery-constraint cost (extension)
//	paperfigs -buffer              # store-buffer size sweep (extension)
//	paperfigs -all                 # everything
//	paperfigs -all -j 8            # everything, 8 cells compiled/simulated at once
//
// All sections share one evaluation runner, so per-benchmark artifacts
// (build, reference profile, superblock formation, schedules) are computed
// once per invocation regardless of how many sections request them, and the
// cell matrix is fanned out over -j workers. Output is byte-identical at
// any -j.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"sentinel/internal/eval"
	"sentinel/internal/machine"
	"sentinel/internal/obs"
	"sentinel/internal/sim"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

// sections aliases the shared section selector; the rendering itself lives
// in eval.RenderSections so `sentineld`'s /v1/figures serves the exact same
// bytes.
type sections = eval.Sections

// run renders the selected sections to w using r for every measurement.
func run(s sections, r *eval.Runner, w io.Writer) error {
	return eval.RenderSections(context.Background(), s, r, w)
}

func main() {
	var s sections
	flag.BoolVar(&s.Fig4, "fig4", false, "Figure 4: sentinel vs restricted percolation")
	flag.BoolVar(&s.Fig5, "fig5", false, "Figure 5: general vs sentinel vs sentinel+stores")
	flag.BoolVar(&s.Table3, "table3", false, "Table 3: instruction latencies")
	flag.BoolVar(&s.Overhead, "overhead", false, "sentinel overhead ablation")
	flag.BoolVar(&s.Recovery, "recovery", false, "recovery-constraint cost (extension)")
	flag.BoolVar(&s.Buffer, "buffer", false, "store-buffer size sweep (extension)")
	flag.BoolVar(&s.Faults, "faults", false, "fault-injection study (extension)")
	flag.BoolVar(&s.Sharing, "sharing", false, "shared-sentinel ablation (extension)")
	flag.BoolVar(&s.Boost, "boosting", false, "instruction boosting vs sentinel (extension)")
	flag.BoolVar(&s.Prediction, "prediction", false, "branch-prediction sensitivity: perfect vs static vs TAGE frontends (extension)")
	all := flag.Bool("all", false, "run everything")
	jobs := flag.Int("j", 0, "cells to compile/simulate concurrently (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print runner cache/utilization metrics to stderr after the run")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON of one benchmark cell to this file (see -tracebench)")
	traceBench := flag.String("tracebench", "cmp", "benchmark to trace with -trace (sentinel+stores, issue 8)")
	benchJSON := flag.String("benchjson", "", "measure the schedule/sim/serve hot paths and write BENCH_schedule.json, BENCH_sim.json and BENCH_serve.json into this directory")
	var prof obs.Profiles
	flag.StringVar(&prof.CPUFile, "cpuprofile", "", "write a pprof CPU profile to this file")
	flag.StringVar(&prof.MemFile, "memprofile", "", "write a pprof heap profile to this file on exit")
	flag.StringVar(&prof.HTTPAddr, "httpprof", "", "serve net/http/pprof and /debug/vars on this address (e.g. :6060)")
	flag.Parse()

	if *all {
		s = eval.AllSections()
	}
	if !s.Any() && *benchJSON != "" {
		// Benchmark-only invocation: no figure output, just the JSON files.
		if err := writeBenchJSON(*benchJSON); err != nil {
			fatal(err)
		}
		return
	}
	if !s.Any() {
		flag.Usage()
		os.Exit(2)
	}
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	r := eval.NewRunner(*jobs)
	var reg *obs.Registry
	if *stats {
		reg = obs.NewRegistry()
		r.SetMetrics(reg)
		if err := reg.Publish("paperfigs"); err != nil {
			fatal(err)
		}
	}
	if err := run(s, r, os.Stdout); err != nil {
		fatal(err)
	}
	// Observability side-channels write to stderr and separate files, never
	// to stdout: figure output stays byte-identical with them on or off
	// (the CI "no observer effect" job and TestObserverEffect pin this).
	if *trace != "" {
		if err := writeTrace(r, *traceBench, *trace); err != nil {
			fatal(err)
		}
	}
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON); err != nil {
			fatal(err)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "\n== runner metrics ==\n%s", r.MetricsSummary())
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

// writeTrace re-simulates one benchmark cell (sentinel+stores, issue 8 —
// the configuration that exercises tags, probationary stores and sentinel
// flows) with the cycle tracer attached, reusing the runner's cached
// artifacts, and writes Chrome trace-event JSON to path.
func writeTrace(r *eval.Runner, bench, path string) error {
	b, ok := workload.ByName(bench)
	if !ok {
		return fmt.Errorf("-tracebench: unknown workload %q", bench)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	tr := obs.NewTracer(f)
	_, err = r.Simulate(b, machine.Base(8, machine.SentinelStores), superblock.Options{}, sim.Options{Trace: tr})
	if cerr := tr.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
