package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sentinel/internal/core"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
	"sentinel/internal/sim"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

// benchRecord is one benchmark measurement in the BENCH_*.json files CI
// gates on: scripts/benchgate.py compares ns_per_op against the committed
// baseline and fails the build on a >20% regression.
type benchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iters       int     `json:"iters"`
}

func record(name string, r testing.BenchmarkResult) benchRecord {
	return benchRecord{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iters:       r.N,
	}
}

// benchFormed builds, profiles and forms one workload kernel — everything
// upstream of the scheduler, excluded from the measured region.
func benchFormed(name string) (*prog.Program, *mem.Memory, error) {
	w, ok := workload.ByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("benchjson: unknown workload %q", name)
	}
	p, m := w.Build()
	p.Layout()
	ref, err := prog.Run(p, m.Clone(), prog.Options{Collect: true})
	if err != nil {
		return nil, nil, err
	}
	f := superblock.Form(p, ref.Profile, superblock.Options{})
	f.Layout()
	return f, m, nil
}

// writeBenchJSON measures the two dense-index hot paths — list scheduling
// and the simulator inner loop — on the kernels with the largest superblocks
// and writes BENCH_schedule.json and BENCH_sim.json into dir. The files are
// the perf trajectory of the repo: CI regenerates them and gates merges on
// ns_per_op regressions against the committed baselines.
func writeBenchJSON(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	var schedRecs []benchRecord
	for _, name := range []string{"nasa7", "tomcatv", "doduc", "espresso", "cmp"} {
		md := machine.Base(8, machine.SentinelStores)
		f, _, err := benchFormed(name)
		if err != nil {
			return err
		}
		var serr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Schedule(f, md); err != nil {
					serr = err
					b.FailNow()
				}
			}
		})
		if serr != nil {
			return serr
		}
		schedRecs = append(schedRecs, record("ScheduleBlock/"+name, r))
	}
	{
		md := machine.Base(8, machine.Sentinel).WithRecovery()
		f, _, err := benchFormed("nasa7")
		if err != nil {
			return err
		}
		var serr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Schedule(f, md); err != nil {
					serr = err
					b.FailNow()
				}
			}
		})
		if serr != nil {
			return serr
		}
		schedRecs = append(schedRecs, record("ScheduleRecovery/nasa7", r))
	}

	var simRecs []benchRecord
	for _, name := range []string{"nasa7", "tomcatv", "doduc", "wc"} {
		md := machine.Base(8, machine.SentinelStores)
		f, m, err := benchFormed(name)
		if err != nil {
			return err
		}
		sched, _, err := core.Schedule(f, md)
		if err != nil {
			return err
		}
		idx := sim.NewProgIndex(sched)
		var serr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sched, md, m.Clone(), sim.Options{Index: idx}); err != nil {
					serr = err
					b.FailNow()
				}
			}
		})
		if serr != nil {
			return serr
		}
		simRecs = append(simRecs, record("SimRun/"+name, r))
	}

	for _, f := range []struct {
		name string
		recs []benchRecord
	}{
		{"BENCH_schedule.json", schedRecs},
		{"BENCH_sim.json", simRecs},
	} {
		data, err := json.MarshalIndent(f.recs, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, f.name), append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
