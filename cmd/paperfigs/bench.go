package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sentinel/internal/core"
	"sentinel/internal/fingerprint"
	"sentinel/internal/fleet"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/obs"
	"sentinel/internal/prog"
	"sentinel/internal/server"
	"sentinel/internal/sim"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

// benchRecord is one benchmark measurement in the BENCH_*.json files CI
// gates on: scripts/benchgate.py compares ns_per_op against the committed
// baseline and fails the build on a >20% regression.
type benchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iters       int     `json:"iters"`
}

func record(name string, r testing.BenchmarkResult) benchRecord {
	return benchRecord{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iters:       r.N,
	}
}

// benchFormed builds, profiles and forms one workload kernel — everything
// upstream of the scheduler, excluded from the measured region.
func benchFormed(name string) (*prog.Program, *mem.Memory, error) {
	w, ok := workload.ByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("benchjson: unknown workload %q", name)
	}
	p, m := w.Build()
	p.Layout()
	ref, err := prog.Run(p, m.Clone(), prog.Options{Collect: true})
	if err != nil {
		return nil, nil, err
	}
	f := superblock.Form(p, ref.Profile, superblock.Options{})
	f.Layout()
	return f, m, nil
}

// discardWriter is the minimal ResponseWriter for handler-path benchmarks:
// preallocated header, discarded body, remembered status.
type discardWriter struct {
	h      http.Header
	status int
}

func (w *discardWriter) Header() http.Header         { return w.h }
func (w *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *discardWriter) WriteHeader(code int)        { w.status = code }

// benchServe measures the warm serving hot path — the steady state of a
// long-lived sentineld, where every repeat request is a response-byte cache
// hit — by driving the handler in-process with a reused request object.
func benchServe() ([]benchRecord, error) {
	simBody := []byte(`{"workload":"cmp","model":"sentinel+stores","width":8}`)
	// Two dedicated servers for the observability-overhead rows: the flight
	// recorder armed but effectively never sampling (steady-state production),
	// and tail-sampling 1 in 16 (the recommended diagnostic rate).
	armed := server.New(server.Config{Workers: 1, Recorder: obs.NewRecorder(
		obs.RecorderConfig{Entries: 256, Slow: time.Hour, Every: 1 << 30})})
	sampled := server.New(server.Config{Workers: 1, Recorder: obs.NewRecorder(
		obs.RecorderConfig{Entries: 256, Slow: time.Hour, Every: 16})})
	srv := server.New(server.Config{Workers: 1})
	cases := []struct {
		name, method, target string
		body                 []byte
		srv                  *server.Server
	}{
		{"ServeSimulate/warm", http.MethodPost, "/v1/simulate", simBody, srv},
		{"ServeSimulate/warm-recorder", http.MethodPost, "/v1/simulate", simBody, armed},
		{"ServeSimulate/warm-sampled16", http.MethodPost, "/v1/simulate", simBody, sampled},
		{"ServeSchedule/warm", http.MethodPost, "/v1/schedule", simBody, srv},
		{"ServeFigures/fig4", http.MethodGet, "/v1/figures?section=fig4", nil, srv},
	}
	var recs []benchRecord
	for _, c := range cases {
		h := c.srv.Handler()
		req, err := http.NewRequest(c.method, "http://bench"+c.target, nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		// The serving fast path consumes and replaces r.Body, so a reused
		// request needs its body reattached (and rewound) every iteration.
		rb := &reusableBody{}
		attach := func() {
			if c.body != nil {
				rb.Reset(c.body)
				req.Body = rb
				req.ContentLength = int64(len(c.body))
			}
		}
		w := &discardWriter{h: make(http.Header, 4)}
		attach()
		h.ServeHTTP(w, req) // warm: populate every cache under the endpoint
		if w.status != 0 && w.status != http.StatusOK {
			return nil, fmt.Errorf("benchjson: warm %s %s = %d", c.method, c.target, w.status)
		}
		var bad int
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w.status = 0
				attach()
				h.ServeHTTP(w, req)
				if w.status != 0 && w.status != http.StatusOK {
					bad = w.status
					b.FailNow()
				}
			}
		})
		if bad != 0 {
			return nil, fmt.Errorf("benchjson: %s returned status %d mid-benchmark", c.name, bad)
		}
		recs = append(recs, record(c.name, r))
	}
	return recs, nil
}

// reusableBody is a rewindable no-op-Close request body for the reused
// benchmark request above.
type reusableBody struct{ bytes.Reader }

func (b *reusableBody) Close() error { return nil }

// benchServeBatch measures POST /v1/batch end to end (decode, per-element
// cache probe, fan-out, stream framing) at 64 elements — ns_per_op is per
// batch, so divide by 64 to compare against the single-request rows:
//
//	warm64:  every element a response-byte cache hit, the batched analogue
//	         of ServeSimulate/warm
//	cold64:  cache disabled, every element re-executes through the handler
//	         against warm artifacts — the amortization target
//	mixed:   32 warm hits interleaved with 32 full simulations (full runs
//	         are never cached), the realistic mixed frame
func benchServeBatch() ([]benchRecord, error) {
	item := func(body string) string { return `{"request":` + body + `}` }
	warmBody := item(`{"workload":"cmp","model":"sentinel+stores","width":8}`)
	var warm64, cold64, mixed []string
	for i := 0; i < 64; i++ {
		name := []string{"cmp", "wc", "grep", "eqntott"}[i%4]
		warm64 = append(warm64, warmBody)
		cold64 = append(cold64, item(fmt.Sprintf(
			`{"workload":%q,"model":"sentinel+stores","width":8}`, name)))
		if i%2 == 0 {
			mixed = append(mixed, warmBody)
		} else {
			mixed = append(mixed, item(fmt.Sprintf(
				`{"workload":%q,"model":"sentinel+stores","width":8,"full":true}`, name)))
		}
	}
	frame := func(items []string) []byte {
		return []byte("[" + strings.Join(items, ",") + "]")
	}
	cached := server.New(server.Config{Workers: 1})
	uncached := server.New(server.Config{Workers: 1, RespCacheEntries: -1})
	cases := []struct {
		name string
		body []byte
		srv  *server.Server
	}{
		{"ServeBatch/warm64", frame(warm64), cached},
		{"ServeBatch/cold64", frame(cold64), uncached},
		{"ServeBatch/mixed", frame(mixed), cached},
	}
	var recs []benchRecord
	for _, c := range cases {
		h := c.srv.Handler()
		req, err := http.NewRequest(http.MethodPost, "http://bench/v1/batch", nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		rb := &reusableBody{}
		attach := func() {
			rb.Reset(c.body)
			req.Body = rb
			req.ContentLength = int64(len(c.body))
		}
		w := &discardWriter{h: make(http.Header, 4)}
		attach()
		h.ServeHTTP(w, req) // warm artifacts (and, where enabled, the cache)
		// A streamed batch never calls WriteHeader explicitly, so 0 is the
		// implicit 200 here, as in benchServe.
		if w.status != 0 && w.status != http.StatusOK {
			return nil, fmt.Errorf("benchjson: warm %s = %d", c.name, w.status)
		}
		var bad int
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w.status = 0
				attach()
				h.ServeHTTP(w, req)
				if w.status != 0 && w.status != http.StatusOK {
					bad = w.status
					b.FailNow()
				}
			}
		})
		if bad != 0 {
			return nil, fmt.Errorf("benchjson: %s returned status %d mid-benchmark", c.name, bad)
		}
		recs = append(recs, record(c.name, r))
	}
	return recs, nil
}

// benchFleetRoute measures the router's per-request routing decision —
// count-min sketch touch, hot check, consistent-hash lookup — the fixed
// overhead sentinelfront adds in front of every proxied request. It must
// stay alloc-free and three orders of magnitude under the serve rows.
func benchFleetRoute() (benchRecord, error) {
	rt, err := fleet.New(fleet.Config{
		Backends:      []string{"a:1", "b:2", "c:3"},
		ProbeInterval: -1, // no prober: the decision, not the health plane
	})
	if err != nil {
		return benchRecord{}, err
	}
	defer rt.Close()
	keys := make([]fingerprint.Key, 1024)
	for i := range keys {
		keys[i] = fingerprint.RawRequest("/v1/simulate", "",
			[]byte(fmt.Sprintf("bench-key-%d", i)))
	}
	var bad bool
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			addr, _ := rt.Route(keys[i&1023])
			if addr == "" {
				bad = true
				b.FailNow()
			}
		}
	})
	if bad {
		return benchRecord{}, fmt.Errorf("benchjson: FleetRoute found no eligible backend")
	}
	return record("FleetRoute", r), nil
}

// benchFleetServe measures the router's two serving paths over one live
// in-process backend on a real TCP listener:
//
//	FleetServeWarm:  a raw-lane front-cache hit — slurp, fingerprint, one
//	                 shard lookup, one Write, no backend traffic. Benchgate
//	                 pins it at <= 4 allocs/op (--max-allocs).
//	FleetProxyMiss:  the same request with caching disabled, so every serve
//	                 crosses the raw pooled-connection HTTP/1.1 hop to a
//	                 warm backend — the per-request cost of the cold path.
func benchFleetServe() ([]benchRecord, error) {
	backend := server.New(server.Config{Workers: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: backend.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck
	defer httpSrv.Close()

	body := []byte(`{"workload":"cmp","model":"sentinel+stores","width":8}`)
	cases := []struct {
		name    string
		entries int // RespCacheEntries: 0 = default cache on, -1 = off
	}{
		{"FleetServeWarm", 0},
		{"FleetProxyMiss", -1},
	}
	var recs []benchRecord
	for _, c := range cases {
		rt, err := fleet.New(fleet.Config{
			Backends:         []string{ln.Addr().String()},
			ProbeInterval:    -1, // static health: the serve path, not the prober
			RespCacheEntries: c.entries,
		})
		if err != nil {
			return nil, err
		}
		h := rt.Handler()
		req, err := http.NewRequest(http.MethodPost, "http://bench/v1/simulate", nil)
		if err != nil {
			rt.Close()
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		rb := &reusableBody{}
		attach := func() {
			rb.Reset(body)
			req.Body = rb
			req.ContentLength = int64(len(body))
		}
		w := &discardWriter{h: make(http.Header, 8)}
		attach()
		h.ServeHTTP(w, req) // prime: fills the front cache when enabled
		if w.status != 0 && w.status != http.StatusOK {
			rt.Close()
			return nil, fmt.Errorf("benchjson: warm %s = %d", c.name, w.status)
		}
		var bad int
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				clear(w.h) // the miss relay Adds headers; a reused map must not accumulate
				w.status = 0
				attach()
				h.ServeHTTP(w, req)
				if w.status != 0 && w.status != http.StatusOK {
					bad = w.status
					b.FailNow()
				}
			}
		})
		rt.Close()
		if bad != 0 {
			return nil, fmt.Errorf("benchjson: %s returned status %d mid-benchmark", c.name, bad)
		}
		recs = append(recs, record(c.name, r))
	}
	return recs, nil
}

// writeBenchJSON measures the two dense-index hot paths — list scheduling
// and the simulator inner loop — on the kernels with the largest superblocks
// and writes BENCH_schedule.json and BENCH_sim.json into dir. The files are
// the perf trajectory of the repo: CI regenerates them and gates merges on
// ns_per_op regressions against the committed baselines.
func writeBenchJSON(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	var schedRecs []benchRecord
	for _, name := range []string{"nasa7", "tomcatv", "doduc", "espresso", "cmp"} {
		md := machine.Base(8, machine.SentinelStores)
		f, _, err := benchFormed(name)
		if err != nil {
			return err
		}
		var serr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Schedule(f, md); err != nil {
					serr = err
					b.FailNow()
				}
			}
		})
		if serr != nil {
			return serr
		}
		schedRecs = append(schedRecs, record("ScheduleBlock/"+name, r))
	}
	{
		md := machine.Base(8, machine.Sentinel).WithRecovery()
		f, _, err := benchFormed("nasa7")
		if err != nil {
			return err
		}
		var serr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Schedule(f, md); err != nil {
					serr = err
					b.FailNow()
				}
			}
		})
		if serr != nil {
			return serr
		}
		schedRecs = append(schedRecs, record("ScheduleRecovery/nasa7", r))
	}

	var simRecs []benchRecord
	for _, name := range []string{"nasa7", "tomcatv", "doduc", "wc"} {
		md := machine.Base(8, machine.SentinelStores)
		f, m, err := benchFormed(name)
		if err != nil {
			return err
		}
		sched, _, err := core.Schedule(f, md)
		if err != nil {
			return err
		}
		idx := sim.NewProgIndex(sched)
		var serr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sched, md, m.Clone(), sim.Options{Index: idx}); err != nil {
					serr = err
					b.FailNow()
				}
			}
		})
		if serr != nil {
			return serr
		}
		simRecs = append(simRecs, record("SimRun/"+name, r))
	}
	// The same kernels under the TAGE frontend: the delta against SimRun is
	// the pure frontend cost (prediction, redirect and throttle accounting),
	// gated so frontend work never creeps into the classic inner loop.
	for _, name := range []string{"nasa7", "tomcatv", "doduc", "wc"} {
		md := machine.Base(8, machine.SentinelStores).WithPredictor(machine.PredTAGE)
		f, m, err := benchFormed(name)
		if err != nil {
			return err
		}
		sched, _, err := core.Schedule(f, md.CompileView())
		if err != nil {
			return err
		}
		idx := sim.NewProgIndex(sched)
		pred := sim.NewPredictor(md, idx)
		var serr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sched, md, m.Clone(), sim.Options{Index: idx, Pred: pred}); err != nil {
					serr = err
					b.FailNow()
				}
			}
		})
		if serr != nil {
			return serr
		}
		simRecs = append(simRecs, record("SimRunTAGE/"+name, r))
	}

	serveRecs, err := benchServe()
	if err != nil {
		return err
	}
	batchRecs, err := benchServeBatch()
	if err != nil {
		return err
	}
	serveRecs = append(serveRecs, batchRecs...)
	fleetRec, err := benchFleetRoute()
	if err != nil {
		return err
	}
	serveRecs = append(serveRecs, fleetRec)
	fleetServeRecs, err := benchFleetServe()
	if err != nil {
		return err
	}
	serveRecs = append(serveRecs, fleetServeRecs...)

	for _, f := range []struct {
		name string
		recs []benchRecord
	}{
		{"BENCH_schedule.json", schedRecs},
		{"BENCH_sim.json", simRecs},
		{"BENCH_serve.json", serveRecs},
	} {
		data, err := json.MarshalIndent(f.recs, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, f.name), append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
