package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sentinel/internal/eval"
	"sentinel/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestGoldenSections pins the exact output of the headline sections against
// checked-in golden files. Regenerate intentionally with:
//
//	go test ./cmd/paperfigs -run TestGoldenSections -update
//
// One Runner serves all sections, as in main: the golden files therefore
// also pin that artifact reuse does not bleed state between sections.
func TestGoldenSections(t *testing.T) {
	r := eval.NewRunner(0)
	for _, tc := range []struct {
		golden string
		s      sections
	}{
		{"fig4.txt", sections{Fig4: true}},
		{"fig5.txt", sections{Fig5: true}},
		{"overhead.txt", sections{Overhead: true}},
		{"prediction.txt", sections{Prediction: true}},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tc.s, r, &buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", tc.golden)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output differs from %s (re-run with -update if intended):\ngot:\n%s\nwant:\n%s",
					path, buf.Bytes(), want)
			}
		})
	}
}

// TestObserverEffect: attaching the metrics registry (-stats) and writing a
// trace (-trace) must leave the figure bytes untouched — metrics go to
// stderr, the trace to its own file, and the traced simulation never feeds
// the measured matrix. CI re-checks the same property through the real CLI.
func TestObserverEffect(t *testing.T) {
	s := sections{Fig4: true, Overhead: true}
	var plain bytes.Buffer
	if err := run(s, eval.NewRunner(0), &plain); err != nil {
		t.Fatal(err)
	}

	r := eval.NewRunner(0)
	r.SetMetrics(obs.NewRegistry())
	var observed bytes.Buffer
	if err := run(s, r, &observed); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	if err := writeTrace(r, "cmp", tracePath); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), observed.Bytes()) {
		t.Error("figure output differs with metrics attached")
	}
	if fi, err := os.Stat(tracePath); err != nil || fi.Size() == 0 {
		t.Errorf("trace file missing or empty: %v", err)
	}
	if r.MetricsSummary() == "" {
		t.Error("metrics summary empty after an observed run")
	}
}

// TestAllSectionsParallelDeterminism runs the full -all pipeline at -j 1 and
// -j 8 and requires byte-identical output — the contract that makes the -j
// flag safe to use when regenerating the paper's figures.
func TestAllSectionsParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full -all sweep")
	}
	all := eval.AllSections()
	var serial, parallel bytes.Buffer
	if err := run(all, eval.NewRunner(1), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(all, eval.NewRunner(8), &parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Error("-all output differs between -j 1 and -j 8")
	}
}
