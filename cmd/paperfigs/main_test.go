package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sentinel/internal/eval"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestGoldenSections pins the exact output of the headline sections against
// checked-in golden files. Regenerate intentionally with:
//
//	go test ./cmd/paperfigs -run TestGoldenSections -update
//
// One Runner serves all sections, as in main: the golden files therefore
// also pin that artifact reuse does not bleed state between sections.
func TestGoldenSections(t *testing.T) {
	r := eval.NewRunner(0)
	for _, tc := range []struct {
		golden string
		s      sections
	}{
		{"fig4.txt", sections{fig4: true}},
		{"fig5.txt", sections{fig5: true}},
		{"overhead.txt", sections{overhead: true}},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tc.s, r, &buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", tc.golden)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output differs from %s (re-run with -update if intended):\ngot:\n%s\nwant:\n%s",
					path, buf.Bytes(), want)
			}
		})
	}
}

// TestAllSectionsParallelDeterminism runs the full -all pipeline at -j 1 and
// -j 8 and requires byte-identical output — the contract that makes the -j
// flag safe to use when regenerating the paper's figures.
func TestAllSectionsParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full -all sweep")
	}
	all := sections{true, true, true, true, true, true, true, true, true}
	var serial, parallel bytes.Buffer
	if err := run(all, eval.NewRunner(1), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(all, eval.NewRunner(8), &parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Error("-all output differs between -j 1 and -j 8")
	}
}
