package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sentinel/internal/machine"
	"sentinel/internal/obs"
	"sentinel/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestGoldenStats pins the exact text of `sentinelsim -workload cmp -stats`:
// the run report plus the deterministic stall-cause/sentinel-activity/op-mix
// breakdown. Regenerate intentionally with:
//
//	go test ./cmd/sentinelsim -run TestGoldenStats -update
func TestGoldenStats(t *testing.T) {
	b, ok := workload.ByName("cmp")
	if !ok {
		t.Fatal("workload cmp missing")
	}
	p, m := b.Build()
	var buf bytes.Buffer
	code, err := simulate(p, m, machine.Base(8, machine.Sentinel),
		runOpts{form: true, verify: true, stats: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	path := filepath.Join("testdata", "golden", "stats.txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-stats output differs from %s (re-run with -update if intended):\ngot:\n%s\nwant:\n%s",
			path, buf.Bytes(), want)
	}
}

// TestTraceFileSchema drives the CLI's trace path end to end on a real
// workload under sentinel+stores and validates the file the user would
// open in Perfetto: JSON parses as Chrome trace-event format, slices cover
// every dynamic instruction, and flow events pair starts with ends.
func TestTraceFileSchema(t *testing.T) {
	b, ok := workload.ByName("cmp")
	if !ok {
		t.Fatal("workload cmp missing")
	}
	p, m := b.Build()
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(f)
	var buf bytes.Buffer
	code, err := simulate(p, m, machine.Base(8, machine.SentinelStores),
		runOpts{form: true, verify: true, trace: tr}, &buf)
	if cerr := tr.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil || code != 0 {
		t.Fatalf("simulate: code %d err %v", code, err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not Chrome trace-event JSON: %v", err)
	}
	phases := map[string]int{}
	width := 0
	for _, e := range doc.TraceEvents {
		phases[e.Ph]++
		if e.Ph == "X" && e.Tid > width {
			width = e.Tid
		}
	}
	if phases["X"] == 0 {
		t.Error("no duration slices in trace")
	}
	if width == 0 {
		t.Error("all slices on track 0: per-slot tracks missing from a width-8 schedule")
	}
	if phases["f"] > phases["s"] {
		t.Errorf("more flow ends (%d) than starts (%d)", phases["f"], phases["s"])
	}
}
