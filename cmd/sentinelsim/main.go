// Command sentinelsim compiles and runs a MIR program (or a built-in
// benchmark kernel) on the cycle simulator, reporting cycles, instructions
// and IPC, and verifying the result against the sequential reference
// interpreter.
//
//	sentinelsim -model sentinel -width 8 prog.s
//	sentinelsim -workload cmp -model restricted -width 1
//	sentinelsim -workload cmp -sweep -j 4
//	sentinelsim -workload cmp -stats -trace cmp.json
//
// -sweep measures the workload under every speculation model at every
// paper issue rate through the concurrent evaluation runner (-j workers),
// printing a cycles/speedup table instead of a single run.
//
// Observability: -stats prints the per-run stall-cause breakdown, sentinel
// activity and dynamic opcode mix; -trace writes a Chrome trace-event JSON
// file (open in Perfetto or chrome://tracing) with one track per issue slot
// and flow arrows from each speculative exception to its sentinel;
// -cpuprofile/-memprofile/-httpprof expose pprof.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sentinel/internal/asm"
	"sentinel/internal/core"
	"sentinel/internal/eval"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/obs"
	"sentinel/internal/prog"
	"sentinel/internal/sim"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

func main() {
	model := flag.String("model", "sentinel", "speculation model: restricted, general, sentinel, sentinel+stores")
	width := flag.Int("width", 8, "issue width")
	predictor := flag.String("predictor", "perfect", "branch-prediction frontend: perfect, static, tage")
	mispredict := flag.Int("mispredict", 0, "mispredict redirect penalty in cycles (0 = default for the predictor)")
	form := flag.Bool("superblock", true, "profile and form superblocks before scheduling")
	wl := flag.String("workload", "", "run a built-in benchmark kernel instead of a source file")
	verify := flag.Bool("verify", true, "compare against the reference interpreter")
	sweep := flag.Bool("sweep", false, "measure the workload under every model and width (requires -workload)")
	jobs := flag.Int("j", 0, "cells to compile/simulate concurrently in -sweep (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print the per-run stall-cause and sentinel-activity breakdown")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON file of the run (Perfetto/chrome://tracing)")
	var prof obs.Profiles
	flag.StringVar(&prof.CPUFile, "cpuprofile", "", "write a pprof CPU profile to this file")
	flag.StringVar(&prof.MemFile, "memprofile", "", "write a pprof heap profile to this file on exit")
	flag.StringVar(&prof.HTTPAddr, "httpprof", "", "serve net/http/pprof and /debug/vars on this address (e.g. :6060)")
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}

	if *sweep {
		if *wl == "" {
			fatal(fmt.Errorf("-sweep requires -workload"))
		}
		b, ok := workload.ByName(*wl)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *wl))
		}
		if err := runSweep(b, *jobs, *stats); err != nil {
			fatal(err)
		}
		if err := stopProf(); err != nil {
			fatal(err)
		}
		return
	}

	md, err := parseMachine(*model, *width, *predictor, *mispredict)
	if err != nil {
		fatal(err)
	}

	var p *prog.Program
	var m *mem.Memory
	switch {
	case *wl != "":
		b, ok := workload.ByName(*wl)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *wl))
		}
		p, m = b.Build()
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		if p, m, err = asm.Parse(string(src)); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	var tr *obs.Tracer
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fatal(err)
		}
		tr = obs.NewTracer(f)
	}
	code, err := simulate(p, m, md, runOpts{form: *form, verify: *verify, stats: *stats, trace: tr}, os.Stdout)
	if tr != nil {
		if cerr := tr.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: %w", cerr)
		}
	}
	if err != nil {
		fatal(err)
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
	if code != 0 {
		os.Exit(code)
	}
}

// runOpts configures one simulate call.
type runOpts struct {
	form   bool
	verify bool
	stats  bool
	trace  *obs.Tracer
}

// simulate compiles and runs one program, writing the report to w. The
// returned code is the intended process exit code (0 ok, 3 unhandled
// exception); an error is a fatal condition. Split from main so tests can
// golden-pin the -stats output.
func simulate(p *prog.Program, m *mem.Memory, md machine.Desc, o runOpts, w io.Writer) (code int, err error) {
	p.Layout()

	var ref *prog.Result
	if o.verify || o.form {
		if ref, err = prog.Run(p, m.Clone(), prog.Options{Collect: true}); err != nil {
			return 0, fmt.Errorf("reference run: %w", err)
		}
	}
	if o.form {
		p = superblock.Form(p, ref.Profile, superblock.Options{})
		p.Layout()
	}
	sched, _, err := core.Schedule(p, md)
	if err != nil {
		return 0, err
	}
	res, err := sim.Run(sched, md, m, sim.Options{Trace: o.trace})
	if err != nil {
		if exc, ok := sim.Unhandled(err); ok {
			in, blk, _ := sched.InstrAt(exc.ReportedPC)
			fmt.Fprintf(w, "EXCEPTION: %v\n  cause: pc %d: %v (block %s)\n  signalled by pc %d at cycle %d\n",
				exc.Kind, exc.ReportedPC, in, blk.Label, exc.ByPC, exc.Cycle)
			return 3, nil
		}
		return 0, err
	}

	front := ""
	if md.Predictor != machine.PredPerfect {
		front = fmt.Sprintf(", %v frontend (mispredict penalty %d)", md.Predictor, md.MispredictPenalty)
	}
	fmt.Fprintf(w, "machine:  %v, issue %d, %d-entry store buffer%s\n", md.Model, md.IssueWidth, md.StoreBuffer, front)
	fmt.Fprintf(w, "cycles:   %d\n", res.Cycles)
	fmt.Fprintf(w, "instrs:   %d (IPC %.2f)\n", res.Instrs, float64(res.Instrs)/float64(res.Cycles))
	fmt.Fprintf(w, "stalls:   %d\n", res.Stalls)
	fmt.Fprintf(w, "output:   %v\n", res.Out)
	if o.stats {
		fmt.Fprintf(w, "\n%s", res.Stats.String())
	}
	if o.verify {
		switch {
		case res.MemSum != ref.MemSum:
			return 0, fmt.Errorf("VERIFICATION FAILED: memory checksum mismatch")
		case fmt.Sprint(res.Out) != fmt.Sprint(ref.Out):
			return 0, fmt.Errorf("VERIFICATION FAILED: output %v != reference %v", res.Out, ref.Out)
		default:
			fmt.Fprintln(w, "verified: matches the sequential reference")
		}
	}
	return 0, nil
}

// runSweep measures one benchmark under every speculation model at every
// paper issue rate, all cells fanned out over the evaluation runner. With
// stats, the runner's cache and utilization metrics follow the table.
func runSweep(b workload.Benchmark, jobs int, stats bool) error {
	models := []machine.Model{machine.Restricted, machine.General,
		machine.Sentinel, machine.SentinelStores}
	r := eval.NewRunner(jobs)
	if stats {
		r.SetMetrics(obs.NewRegistry())
	}
	res, err := r.Run(b, models, eval.Widths, superblock.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("%s: cycles (speedup vs issue-1 restricted base, %d cycles); %d workers\n\n",
		b.Name, res.Base.Cycles, r.Workers())
	fmt.Printf("%-16s", "model")
	for _, w := range eval.Widths {
		fmt.Printf("  %-16s", fmt.Sprintf("issue %d", w))
	}
	fmt.Printf("\n")
	for _, model := range models {
		fmt.Printf("%-16v", model)
		for _, w := range eval.Widths {
			c := res.Cells[eval.Key{Model: model, Width: w}]
			fmt.Printf("  %-16s", fmt.Sprintf("%d (%.2fx)", c.Cycles, c.Speedup))
		}
		fmt.Printf("\n")
	}
	if stats {
		fmt.Printf("\n%s", r.MetricsSummary())
	}
	return nil
}

func parseMachine(model string, width int, predictor string, mispredict int) (machine.Desc, error) {
	var m machine.Model
	switch model {
	case "restricted":
		m = machine.Restricted
	case "general":
		m = machine.General
	case "sentinel":
		m = machine.Sentinel
	case "sentinel+stores", "stores":
		m = machine.SentinelStores
	case "boosting":
		m = machine.Boosting
	default:
		return machine.Desc{}, fmt.Errorf("unknown model %q", model)
	}
	p, err := machine.ParsePredictor(predictor)
	if err != nil {
		return machine.Desc{}, err
	}
	md := machine.Base(width, m).WithPredictor(p)
	if mispredict != 0 {
		// Set after WithPredictor so -mispredict with -predictor perfect is
		// a validation error rather than silently ignored.
		md.MispredictPenalty = mispredict
	}
	return md, md.Validate()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sentinelsim:", err)
	os.Exit(1)
}
