// Command sentinelfront fronts a fleet of sentineld backends: it terminates
// both HTTP/JSON and the binary wire protocol on one port (the same
// first-byte sniff as sentineld), fingerprints every request with the
// canonical serialization the backends key their caches with, and
// consistent-hashes the fingerprint onto the backend ring — so identical
// requests always land where their artifacts are already warm, making each
// backend's caches fleet-wide.
//
//	sentinelfront -addr :8650 -backends localhost:8649,localhost:8651,localhost:8652
//
//	curl -s localhost:8650/v1/figures?section=fig4     # proxied, byte-identical
//	curl -s localhost:8650/fleet/status                # per-backend health + routing view
//
// Health: each backend's /readyz is probed continuously; a draining backend
// stops receiving new keys while it finishes what it holds, a dead one is
// routed around immediately (with one bounded retry onto its ring
// successor for the request that discovered it). Hot fingerprints — keys
// frequent enough to saturate their ring owner — spill round-robin across
// the whole fleet. The router's own /readyz, /metrics, /debug/requests and
// /debug/pprof mirror sentineld's.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sentinel/internal/fleet"
	"sentinel/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8650", "address to listen on")
	backends := flag.String("backends", "", "comma-separated sentineld host:port list (required)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per backend on the hash ring (0 = default 64)")
	hotThreshold := flag.Int("hot-threshold", 0, "sketch estimate at which a key spills fleet-wide (0 = default 64, negative disables)")
	hotWindow := flag.Int("hot-window", 0, "sketch touches between counter halvings (0 = default 4096)")
	probeInterval := flag.Duration("probe-interval", 0, "backend /readyz polling period (0 = default 500ms)")
	probeTimeout := flag.Duration("probe-timeout", 0, "per-probe deadline (0 = default 2s)")
	timeout := flag.Duration("timeout", 0, "per-exchange ceiling on the wire and raw proxied hops (0 = default 30s)")
	respcacheEntries := flag.Int("respcache-entries", 0, "front response-cache entries (0 = default 4096, negative disables caching)")
	drain := flag.Duration("drain", 30*time.Second, "maximum time to wait for in-flight requests on shutdown")
	recEntries := flag.Int("recorder-entries", 256, "flight-recorder retained request records (0 disables the recorder)")
	recEvery := flag.Int("recorder-every", 16, "tail-sample 1 in N ordinary requests (errors and slow requests always sample; <0 samples only errors/slow)")
	recSlow := flag.Duration("recorder-slow", 5*time.Millisecond, "requests at least this slow always sample")
	accessLog := flag.String("accesslog", "", "append one JSON line per sampled request to this file ('-' for stderr)")
	flag.Parse()

	log.SetPrefix("sentinelfront: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	var addrs []string
	for _, a := range strings.Split(*backends, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		log.Fatal("-backends is required: a comma-separated sentineld host:port list")
	}

	var rec *obs.Recorder
	if *recEntries > 0 {
		rec = obs.NewRecorder(obs.RecorderConfig{
			Entries: *recEntries,
			Every:   int64(*recEvery),
			Slow:    *recSlow,
		})
		if *accessLog != "" {
			w := os.Stderr
			if *accessLog != "-" {
				f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					log.Fatalf("accesslog: %v", err)
				}
				defer f.Close()
				w = f
			}
			al := obs.NewAccessLogger(w)
			rec.SetSink(al.Log)
		}
	} else if *accessLog != "" {
		log.Fatal("-accesslog requires the flight recorder (-recorder-entries > 0)")
	}

	reg := obs.NewRegistry()
	rt, err := fleet.New(fleet.Config{
		Backends:         addrs,
		VNodes:           *vnodes,
		HotThreshold:     *hotThreshold,
		HotWindow:        *hotWindow,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		RequestTimeout:   *timeout,
		RespCacheEntries: *respcacheEntries,
		Registry:         reg,
		Recorder:         rec,
		Logf:             log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := reg.Publish("sentinelfront"); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s, routing to %d backend(s): %s",
		ln.Addr(), len(addrs), strings.Join(addrs, ", "))

	// One port, both protocols — exactly like the backends, so any client
	// can point at a backend or the router interchangeably.
	httpSrv := &http.Server{Handler: rt.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(rt.SniffWire(ln)) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		log.Printf("received %v; draining (up to %s)", sig, *drain)
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := rt.Drain(ctx); err != nil {
		log.Printf("drain: %v (in-flight requests abandoned)", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	rt.Close()
	log.Printf("drain complete; in-flight requests: %d; exiting", rt.InFlight())
}
