// Command sentinelc is the compiler driver: it assembles a MIR source file,
// optionally forms superblocks from a profiling run, schedules under a
// chosen speculation model and issue width, and prints the schedule.
//
//	sentinelc -model sentinel -width 8 -superblock prog.s
//	sentinelc -model restricted -width 1 prog.s        # base machine
//	sentinelc -workload grep -model sentinel+stores    # built-in kernels
package main

import (
	"flag"
	"fmt"
	"os"

	"sentinel/internal/asm"
	"sentinel/internal/core"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/opt"
	"sentinel/internal/prog"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

func main() {
	model := flag.String("model", "sentinel", "speculation model: restricted, general, sentinel, sentinel+stores")
	width := flag.Int("width", 8, "issue width")
	form := flag.Bool("superblock", true, "profile and form superblocks before scheduling")
	unroll := flag.Int("unroll", 0, "unroll factor (0 = default)")
	recovery := flag.Bool("recovery", false, "enforce §3.7 restartable-sequence constraints")
	wl := flag.String("workload", "", "compile a built-in benchmark kernel instead of a source file")
	optimize := flag.Bool("O", false, "run classical optimizations (constant folding, copy propagation, DCE) before scheduling")
	stats := flag.Bool("stats", true, "print scheduling statistics")
	flag.Parse()

	md, err := parseMachine(*model, *width, *recovery)
	if err != nil {
		fatal(err)
	}

	var p *prog.Program
	var m *mem.Memory
	switch {
	case *wl != "":
		b, ok := workload.ByName(*wl)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q (see cmd/paperfigs for the list)", *wl))
		}
		p, m = b.Build()
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		if p, m, err = asm.Parse(string(src)); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	p.Layout()
	if *optimize {
		os_ := opt.Optimize(p)
		fmt.Fprintf(os.Stderr, "opt: %d folded, %d propagated, %d eliminated\n",
			os_.Folded, os_.Propagated, os_.Eliminated)
	}
	if *form {
		ref, err := prog.Run(p, m.Clone(), prog.Options{Collect: true})
		if err != nil {
			fatal(fmt.Errorf("profiling run: %w", err))
		}
		p = superblock.Form(p, ref.Profile, superblock.Options{Unroll: *unroll})
		p.Layout()
	}
	sched, st, err := core.Schedule(p, md)
	if err != nil {
		fatal(err)
	}
	fmt.Print(asm.FormatScheduled(sched))
	if *stats {
		fmt.Fprintf(os.Stderr,
			"\n%d speculative, %d checks, %d confirms, %d control deps removed, %d tag resets, %d renamed, %d forced\n",
			st.Speculative, st.Sentinels, st.Confirms, st.RemovedControl,
			st.ClearTags, st.Renamed, st.ForcedIssues)
	}
}

func parseMachine(model string, width int, recovery bool) (machine.Desc, error) {
	var m machine.Model
	switch model {
	case "restricted":
		m = machine.Restricted
	case "general":
		m = machine.General
	case "sentinel":
		m = machine.Sentinel
	case "sentinel+stores", "stores":
		m = machine.SentinelStores
	case "boosting":
		m = machine.Boosting
	default:
		return machine.Desc{}, fmt.Errorf("unknown model %q", model)
	}
	md := machine.Base(width, m)
	if recovery {
		md = md.WithRecovery()
	}
	return md, md.Validate()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sentinelc:", err)
	os.Exit(1)
}
