// Command sentineld serves the compile-and-simulate pipeline over HTTP/JSON:
// a long-lived process owning one evaluation runner, so every benchmark
// artifact (build, reference profile, superblock formation, schedule) is
// compiled at most once per configuration and shared across all requests.
//
//	sentineld -addr :8649                      # serve
//	sentineld -addr :8649 -warm -j 8           # prebuild the figure matrix before readying
//
//	curl -s localhost:8649/v1/figures?section=fig4
//	curl -s localhost:8649/v1/simulate -d '{"workload":"cmp","model":"sentinel+stores","width":8}'
//
// The same port also speaks the length-prefixed binary batch protocol
// (internal/wire): a connection opening with the protocol magic is routed to
// the wire handler instead of HTTP, and -wire-addr adds a dedicated
// listener for it.
//
// Readiness and drain: /readyz reports 503 until warmup (if requested)
// completes, and again as soon as SIGTERM/SIGINT arrives; in-flight
// requests then finish (bounded by -drain) before the process exits 0.
// Metrics are published on /debug/vars and in Prometheus text format on
// /metrics; the flight recorder's retained request records (span waterfalls
// included) are on /debug/requests and /debug/requests.json; profiles on
// /debug/pprof.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sentinel/internal/eval"
	"sentinel/internal/machine"
	"sentinel/internal/obs"
	"sentinel/internal/server"
	"sentinel/internal/superblock"
)

func main() {
	addr := flag.String("addr", ":8649", "address to listen on")
	jobs := flag.Int("j", 0, "evaluation runner workers (0 = GOMAXPROCS)")
	inflight := flag.Int("inflight", 16, "maximum concurrently executing requests")
	queue := flag.Int("queue", 64, "maximum requests waiting for a slot (beyond: 429)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	drain := flag.Duration("drain", 30*time.Second, "maximum time to wait for in-flight requests on shutdown")
	wireAddr := flag.String("wire-addr", "", "optional dedicated listener for the binary batch protocol (the main listener always sniffs for it)")
	warm := flag.Bool("warm", false, "prebuild the paper figure matrix before reporting ready")
	respEntries := flag.Int("respcache-entries", 0, "response-byte cache capacity (0 = default 4096, negative disables)")
	recEntries := flag.Int("recorder-entries", 256, "flight-recorder retained request records (0 disables the recorder)")
	recEvery := flag.Int("recorder-every", 16, "tail-sample 1 in N ordinary requests (errors and slow requests always sample; <0 samples only errors/slow)")
	recSlow := flag.Duration("recorder-slow", 5*time.Millisecond, "requests at least this slow always sample")
	accessLog := flag.String("accesslog", "", "append one JSON line per sampled request to this file ('-' for stderr)")
	flag.Parse()

	log.SetPrefix("sentineld: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	var rec *obs.Recorder
	if *recEntries > 0 {
		rec = obs.NewRecorder(obs.RecorderConfig{
			Entries: *recEntries,
			Every:   int64(*recEvery),
			Slow:    *recSlow,
		})
		if *accessLog != "" {
			w := os.Stderr
			if *accessLog != "-" {
				f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					log.Fatalf("accesslog: %v", err)
				}
				defer f.Close()
				w = f
			}
			al := obs.NewAccessLogger(w)
			rec.SetSink(al.Log)
		}
	} else if *accessLog != "" {
		log.Fatal("-accesslog requires the flight recorder (-recorder-entries > 0)")
	}

	reg := obs.NewRegistry()
	srv := server.New(server.Config{
		Workers:          *jobs,
		MaxInFlight:      *inflight,
		MaxQueue:         *queue,
		RequestTimeout:   *timeout,
		RespCacheEntries: *respEntries,
		Registry:         reg,
		Recorder:         rec,
	})
	if err := reg.Publish("sentineld"); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (workers=%d inflight=%d queue=%d)",
		ln.Addr(), srv.Runner().Workers(), *inflight, *queue)

	var wireLn net.Listener
	if *wireAddr != "" {
		wireLn, err = net.Listen("tcp", *wireAddr)
		if err != nil {
			log.Fatal(err)
		}
		go srv.ServeWire(wireLn) //nolint:errcheck // returns when the listener closes
		log.Printf("wire protocol on %s", wireLn.Addr())
	}

	if *warm {
		srv.SetReady(false)
	}
	// The main listener serves both protocols: each connection's first byte
	// decides whether it is HTTP or a wire-protocol stream.
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(srv.SniffWire(ln)) }()

	if *warm {
		t0 := time.Now()
		_, err := srv.Runner().RunAll(
			[]machine.Model{machine.Restricted, machine.General,
				machine.Sentinel, machine.SentinelStores},
			eval.Widths, superblock.Options{})
		if err != nil {
			log.Fatalf("warmup: %v", err)
		}
		srv.SetReady(true)
		log.Printf("warmup complete in %s; ready", time.Since(t0).Round(time.Millisecond))
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		log.Printf("received %v; draining (up to %s)", sig, *drain)
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	}

	// Drain: stop admitting (readyz goes 503), let in-flight requests
	// finish, then close the listeners and connections. Wire listeners stop
	// accepting immediately; admitted batches run to completion like any
	// other request.
	if wireLn != nil {
		wireLn.Close()
	}
	if n := srv.BatchesInFlight(); n > 0 {
		log.Printf("drain: waiting for %d in-flight batch(es)", n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain: %v (in-flight requests abandoned)", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	log.Printf("drain complete; in-flight batches: %d; exiting", srv.BatchesInFlight())
}
