// Command sentinelload is the load generator for sentineld: it drives
// /v1/simulate (or /v1/schedule) with a mixed workload profile and reports
// throughput and a latency histogram.
//
//	sentinelload -addr http://localhost:8649 -duration 10s -c 8
//	sentinelload -rps 500 -duration 30s -workloads cmp,wc,grep,matrix300
//	sentinelload -fleet -duration 10s -c 16             # drive a sentinelfront router
//	sentinelload -targets a:8649,b:8649 -duration 10s   # spread workers across targets
//
// Two driving modes:
//
//   - closed loop (default): -c workers each keep exactly one request in
//     flight, so offered load adapts to service rate — the mode for "how
//     fast can it go".
//   - open loop (-rps > 0): requests start on a fixed schedule regardless
//     of completions (up to -c concurrent), so queueing delay is visible —
//     the mode for "what does p99 look like at this arrival rate".
//
// Requests cycle deterministically through the -workloads list. The exit
// code is nonzero when any request failed or the achieved throughput fell
// below -min-rps (the CI smoke gate).
//
// -batch N switches both modes to batched requests while keeping latency
// and throughput accounting per element, so batched and single-request runs
// compare directly. The closed loop sends preserialized binary wire frames
// (internal/wire) over its raw connections and timestamps each element as
// its header arrives; the open loop posts the same mix to /v1/batch and
// parses the streamed element headers.
//
// The generator is built not to measure its own allocator. The closed loop
// is a raw HTTP/1.1 client in the wrk mold: each worker owns one keep-alive
// TCP connection and a set of fully preserialized request byte strings (one
// per workload, request line + headers + body rendered once at startup),
// writes them with a single syscall, and parses just enough of the response
// — status code, Content-Length / chunked framing — to discard the body in
// place. No net/http client, no per-request allocation, no shared state
// between workers until results merge after the clock stops. The open loop
// keeps net/http: arrivals spawn goroutines and the rate limiter, not the
// client, dominates that mode.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"sentinel/internal/wire"
)

type result struct {
	latency time.Duration
	status  int
	// wid/seq reconstruct the request ID the server saw ("w<wid>-<seq>"
	// closed loop, "o-<seq>" when wid < 0) without storing a string per
	// request.
	wid int32
	seq int32
	err bool
}

// requestID renders the X-Request-Id this result's request carried.
func (r result) requestID() string {
	if r.wid < 0 {
		return fmt.Sprintf("o-%08d", r.seq)
	}
	return fmt.Sprintf("w%03d-%08d", r.wid, r.seq)
}

// config is everything main's flags select; run is the testable core.
type config struct {
	addr      string
	targets   string
	fleet     bool
	duration  time.Duration
	conc      int
	rps       float64
	workloads string
	model     string
	width     int
	endpoint  string
	timeout   time.Duration
	minRPS    float64
	slowest   int
	batch     int
}

// Default bases for the two deployment shapes: a single sentineld, or a
// sentinelfront router fronting the fleet (-fleet).
const (
	defaultAddr      = "http://127.0.0.1:8649"
	defaultFleetAddr = "http://127.0.0.1:8650"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", defaultAddr, "base URL of the sentineld server (or sentinelfront router); accepts a comma-separated list")
	flag.StringVar(&cfg.targets, "targets", "", "comma-separated base URLs to spread load across (overrides -addr)")
	flag.BoolVar(&cfg.fleet, "fleet", false, "drive a sentinelfront router: default the target to "+defaultFleetAddr+" when -addr/-targets are not set")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "how long to drive load")
	flag.IntVar(&cfg.conc, "c", 8, "concurrency: closed-loop workers, or the open-loop in-flight cap")
	flag.Float64Var(&cfg.rps, "rps", 0, "open-loop target arrival rate in req/s (0 = closed loop)")
	flag.StringVar(&cfg.workloads, "workloads", "cmp,wc,grep,eqntott", "comma-separated workload mix, cycled per request")
	flag.StringVar(&cfg.model, "model", "sentinel+stores", "speculation model for every request")
	flag.IntVar(&cfg.width, "width", 8, "issue width for every request")
	flag.StringVar(&cfg.endpoint, "endpoint", "simulate", "endpoint to drive: simulate or schedule")
	flag.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "per-request client timeout")
	flag.Float64Var(&cfg.minRPS, "min-rps", 0, "exit nonzero when achieved req/s falls below this")
	flag.IntVar(&cfg.slowest, "slowest", 0, "after the run, list the N slowest requests with their request IDs")
	flag.IntVar(&cfg.batch, "batch", 0, "send N-element batches instead of single requests (closed loop: binary wire frames; open loop: POST /v1/batch); latency and throughput stay per element")
	flag.Parse()
	os.Exit(run(cfg, os.Stdout, os.Stderr))
}

// encodeBodies marshals one request body per workload, once, up front.
func encodeBodies(cfg config) ([][]byte, error) {
	var bodies [][]byte
	for _, name := range strings.Split(cfg.workloads, ",") {
		body, err := json.Marshal(map[string]any{
			"workload": strings.TrimSpace(name),
			"model":    cfg.model,
			"width":    cfg.width,
		})
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, body)
	}
	return bodies, nil
}

// hostFromAddr reduces one base URL to a raw dial target. The closed loop
// speaks HTTP/1.1 over plain TCP, so only http (or schemeless) bases are
// accepted there. IPv6 literals work in every spelling: bracketed with a
// port ("[::1]:8649"), bracketed bare ("[::1]"), or raw ("::1").
func hostFromAddr(addr string) (string, error) {
	host := addr
	if strings.Contains(addr, "://") {
		u, err := url.Parse(addr)
		if err != nil {
			return "", err
		}
		if u.Scheme != "http" {
			return "", fmt.Errorf("closed loop speaks plain http; unsupported scheme %q", u.Scheme)
		}
		host = u.Host
	}
	if host == "" {
		return "", fmt.Errorf("no host in -addr %q", addr)
	}
	if _, _, err := net.SplitHostPort(host); err != nil {
		// No port. JoinHostPort adds brackets itself, so an already-bracketed
		// IPv6 literal must shed them first or it would come out
		// double-bracketed ("[[::1]]:80").
		if strings.HasPrefix(host, "[") && strings.HasSuffix(host, "]") {
			host = host[1 : len(host)-1]
		}
		host = net.JoinHostPort(host, "80")
	}
	return host, nil
}

// hostsFromAddr expands a comma-separated target list into raw dial
// targets, one per entry.
func hostsFromAddr(addrs string) ([]string, error) {
	var hosts []string
	for _, a := range strings.Split(addrs, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		h, err := hostFromAddr(a)
		if err != nil {
			return nil, err
		}
		hosts = append(hosts, h)
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("no targets in %q", addrs)
	}
	return hosts, nil
}

// baseURLs expands a comma-separated target list into normalized http base
// URLs for the open loop's net/http client.
func baseURLs(addrs string) ([]string, error) {
	var urls []string
	for _, a := range strings.Split(addrs, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		urls = append(urls, strings.TrimSuffix(a, "/"))
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("no targets in %q", addrs)
	}
	return urls, nil
}

// resolveTargets applies the precedence -targets > -addr, with -fleet
// switching the untouched default onto the router's port.
func resolveTargets(cfg config) string {
	if cfg.targets != "" {
		return cfg.targets
	}
	if cfg.fleet && cfg.addr == defaultAddr {
		return defaultFleetAddr
	}
	return cfg.addr
}

// rawRequest renders one complete HTTP/1.1 request — line, headers, body —
// into a byte string a worker can write with a single syscall forever. The
// X-Request-Id header carries the worker ID plus an 8-digit decimal sequence
// number; seqOff is the offset of those digits, so the worker can stamp each
// shot's sequence in place without reserializing anything.
func rawRequest(host, path string, wid int, body []byte) (req []byte, seqOff int) {
	var b bytes.Buffer
	fmt.Fprintf(&b, "POST %s HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nX-Request-Id: w%03d-",
		path, host, wid)
	seqOff = b.Len()
	fmt.Fprintf(&b, "00000000\r\nContent-Length: %d\r\n\r\n", len(body))
	b.Write(body)
	return b.Bytes(), seqOff
}

// patchSeq overwrites the 8-digit decimal field at off with n (mod 10^8).
func patchSeq(req []byte, off, n int) {
	for i := off + 7; i >= off; i-- {
		req[i] = byte('0' + n%10)
		n /= 10
	}
}

// worker is one closed-loop driver: a dedicated keep-alive connection, the
// preserialized request per workload in the mix, and a private result slice
// nothing else touches until the merge.
type worker struct {
	host    string
	reqs    [][]byte
	seqOffs []int
	conn    net.Conn
	br      *bufio.Reader
	results []result
	timeout time.Duration
	wid     int
	seq     int

	// Per-worker X-Fleet-Backend tally (who actually answered when driving a
	// router: backend addresses, or "cache" for front-cache hits). A linear
	// scan over a handful of names, compared without allocating; merged into
	// the summary after the clock stops.
	fleetNames  []string
	fleetCounts []int
}

// tallyBackend attributes one response to the X-Fleet-Backend value it
// carried. string(v) == name compiles to an allocation-free comparison; the
// only allocation is the first sighting of each distinct backend.
func (w *worker) tallyBackend(v []byte) {
	for i, name := range w.fleetNames {
		if string(v) == name {
			w.fleetCounts[i]++
			return
		}
	}
	w.fleetNames = append(w.fleetNames, string(v))
	w.fleetCounts = append(w.fleetCounts, 1)
}

func newWorker(host, path string, wid int, bodies [][]byte, timeout time.Duration) *worker {
	w := &worker{host: host, timeout: timeout, wid: wid}
	for _, body := range bodies {
		req, off := rawRequest(host, path, wid, body)
		w.reqs = append(w.reqs, req)
		w.seqOffs = append(w.seqOffs, off)
	}
	return w
}

// shoot sends preserialized request j — stamped with this shot's sequence
// number — and records the outcome locally. Any transport or framing error
// drops the connection; the next shot redials.
func (w *worker) shoot(j int) {
	w.seq++
	patchSeq(w.reqs[j], w.seqOffs[j], w.seq)
	t0 := time.Now()
	status, err := w.do(j)
	lat := time.Since(t0)
	if err != nil {
		if w.conn != nil {
			w.conn.Close()
			w.conn = nil
		}
		w.results = append(w.results, result{latency: lat, wid: int32(w.wid), seq: int32(w.seq), err: true})
		return
	}
	w.results = append(w.results, result{latency: lat, status: status, wid: int32(w.wid), seq: int32(w.seq)})
}

func (w *worker) do(j int) (int, error) {
	if w.conn == nil {
		c, err := net.DialTimeout("tcp", w.host, w.timeout)
		if err != nil {
			return 0, err
		}
		w.conn = c
		if w.br == nil {
			w.br = bufio.NewReaderSize(c, 16<<10)
		} else {
			w.br.Reset(c)
		}
	}
	if err := w.conn.SetDeadline(time.Now().Add(w.timeout)); err != nil {
		return 0, err
	}
	if _, err := w.conn.Write(w.reqs[j]); err != nil {
		return 0, err
	}
	return w.readResponse()
}

func (w *worker) close() {
	if w.conn != nil {
		w.conn.Close()
		w.conn = nil
	}
}

// trimCRLF strips the line terminator ReadSlice leaves on.
func trimCRLF(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
		if n > 1 && b[n-2] == '\r' {
			b = b[:n-2]
		}
	}
	return b
}

// headerValue matches a header line against a lowercase name and returns
// the trimmed value — case-insensitive, allocation-free.
func headerValue(line []byte, name string) ([]byte, bool) {
	if len(line) <= len(name) || line[len(name)] != ':' {
		return nil, false
	}
	for i := 0; i < len(name); i++ {
		c := line[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != name[i] {
			return nil, false
		}
	}
	return bytes.TrimSpace(line[len(name)+1:]), true
}

func parseDecimal(b []byte) (int, bool) {
	if len(b) == 0 {
		return 0, false
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// readResponse consumes exactly one HTTP/1.1 response from the worker's
// buffered connection: status line, headers (only Content-Length,
// Transfer-Encoding and Connection matter), then the body, discarded in
// place. A response without body framing must be terminated by connection
// close, so the connection is drained and dropped.
func (w *worker) readResponse() (int, error) {
	line, err := w.br.ReadSlice('\n')
	if err != nil {
		return 0, err
	}
	if len(line) < 12 || !bytes.HasPrefix(line, []byte("HTTP/1.")) {
		return 0, fmt.Errorf("malformed status line %q", trimCRLF(line))
	}
	status := 0
	for _, c := range line[9:12] {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("malformed status line %q", trimCRLF(line))
		}
		status = status*10 + int(c-'0')
	}
	clen := -1
	chunked, closeAfter := false, false
	for {
		h, err := w.br.ReadSlice('\n')
		if err != nil {
			return 0, err
		}
		h = trimCRLF(h)
		if len(h) == 0 {
			break
		}
		if v, ok := headerValue(h, "content-length"); ok {
			n, ok := parseDecimal(v)
			if !ok {
				return 0, fmt.Errorf("malformed Content-Length %q", v)
			}
			clen = n
		} else if v, ok := headerValue(h, "x-fleet-backend"); ok {
			w.tallyBackend(v)
		} else if v, ok := headerValue(h, "transfer-encoding"); ok {
			if bytes.EqualFold(v, []byte("chunked")) {
				chunked = true
			}
		} else if v, ok := headerValue(h, "connection"); ok {
			if bytes.EqualFold(v, []byte("close")) {
				closeAfter = true
			}
		}
	}
	switch {
	case chunked:
		if err := w.discardChunked(); err != nil {
			return 0, err
		}
	case clen >= 0:
		if _, err := w.br.Discard(clen); err != nil {
			return 0, err
		}
	default:
		// No framing: body runs to EOF, connection cannot be reused.
		closeAfter = true
		io.Copy(io.Discard, w.br) //nolint:errcheck
	}
	if closeAfter {
		w.conn.Close()
		w.conn = nil
	}
	return status, nil
}

// discardChunked skips a chunked body: size line, chunk bytes + CRLF,
// repeat; the zero chunk is followed by trailers up to a blank line.
func (w *worker) discardChunked() error {
	for {
		line, err := w.br.ReadSlice('\n')
		if err != nil {
			return err
		}
		line = trimCRLF(line)
		n := 0
		for _, c := range line {
			switch {
			case '0' <= c && c <= '9':
				n = n*16 + int(c-'0')
			case 'a' <= c && c <= 'f':
				n = n*16 + int(c-'a') + 10
			case 'A' <= c && c <= 'F':
				n = n*16 + int(c-'A') + 10
			case c == ';': // chunk extension: size already parsed
			default:
				return fmt.Errorf("malformed chunk size %q", line)
			}
			if c == ';' {
				break
			}
		}
		if n == 0 {
			for {
				t, err := w.br.ReadSlice('\n')
				if err != nil {
					return err
				}
				if len(trimCRLF(t)) == 0 {
					return nil
				}
			}
		}
		if _, err := w.br.Discard(n + 2); err != nil { // chunk + CRLF
			return err
		}
	}
}

// batchWorker is one closed-loop batch driver: a keep-alive connection
// speaking the binary wire protocol (internal/wire), one preserialized
// N-element request frame written per shot, and a result per element
// timestamped as its header arrives. The frame is immutable after
// construction, so every worker shares the same bytes.
type batchWorker struct {
	host    string
	frame   []byte
	conn    net.Conn
	br      *bufio.Reader
	results []result
	timeout time.Duration
	wid     int
	seq     int
}

// buildBatchFrame preserializes the wire request frame: cfg.batch elements
// cycling through the workload mix, tagged by position.
func buildBatchFrame(cfg config, bodies [][]byte) []byte {
	op := byte(wire.OpSimulate)
	if cfg.endpoint == "schedule" {
		op = wire.OpSchedule
	}
	elems := make([]wire.ReqElem, cfg.batch)
	for i := range elems {
		elems[i] = wire.ReqElem{Tag: uint32(i), Op: op, Payload: bodies[i%len(bodies)]}
	}
	return wire.AppendRequest(nil, &wire.ReqFrame{Elems: elems})
}

// shoot sends one frame and drains its response, recording one result per
// element: the latency is frame send to that element's header, which is
// what makes batched and single-request runs comparable. Any transport or
// protocol error — server error frames included — costs one error result
// and the connection; the next shot redials.
func (w *batchWorker) shoot() {
	w.seq++
	t0 := time.Now()
	if err := w.do(t0); err != nil {
		if w.conn != nil {
			w.conn.Close()
			w.conn = nil
		}
		w.results = append(w.results, result{latency: time.Since(t0), wid: int32(w.wid), seq: int32(w.seq), err: true})
	}
}

func (w *batchWorker) do(t0 time.Time) error {
	if w.conn == nil {
		c, err := net.DialTimeout("tcp", w.host, w.timeout)
		if err != nil {
			return err
		}
		w.conn = c
		if w.br == nil {
			w.br = bufio.NewReaderSize(c, 64<<10)
		} else {
			w.br.Reset(c)
		}
	}
	if err := w.conn.SetDeadline(time.Now().Add(w.timeout)); err != nil {
		return err
	}
	if _, err := w.conn.Write(w.frame); err != nil {
		return err
	}
	count, err := wire.ReadResponseHeader(w.br, wire.Limits{})
	if err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		_, status, plen, err := wire.ReadElemHeader(w.br, wire.Limits{})
		if err != nil {
			return err
		}
		lat := time.Since(t0)
		if _, err := w.br.Discard(plen); err != nil {
			return err
		}
		w.results = append(w.results, result{latency: lat, status: status, wid: int32(w.wid), seq: int32(w.seq)})
	}
	return nil
}

func (w *batchWorker) close() {
	if w.conn != nil {
		w.conn.Close()
		w.conn = nil
	}
}

// buildBatchBody renders the open loop's /v1/batch JSON array once: the
// same workload mix and op for every arrival.
func buildBatchBody(cfg config, bodies [][]byte) []byte {
	var b bytes.Buffer
	b.WriteByte('[')
	for i := 0; i < cfg.batch; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"op":%q,"request":%s}`, cfg.endpoint, bodies[i%len(bodies)])
	}
	b.WriteByte(']')
	return b.Bytes()
}

// batchLine is one /v1/batch stream header line (or the done trailer).
type batchLine struct {
	Index  int  `json:"index"`
	Status int  `json:"status"`
	Bytes  int  `json:"bytes"`
	Done   bool `json:"done"`
}

// drainBatchStream parses a /v1/batch response stream, invoking rec with
// each element's status and its latency measured from t0 to the header
// line; payloads are discarded.
func drainBatchStream(r io.Reader, t0 time.Time, rec func(status int, lat time.Duration)) error {
	br := bufio.NewReaderSize(r, 64<<10)
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return err
		}
		var h batchLine
		if err := json.Unmarshal(line, &h); err != nil {
			return err
		}
		if h.Done {
			return nil
		}
		rec(h.Status, time.Since(t0))
		if _, err := br.Discard(h.Bytes); err != nil {
			return err
		}
	}
}

func run(cfg config, out, errOut io.Writer) int {
	var path string
	switch cfg.endpoint {
	case "simulate":
		path = "/v1/simulate"
	case "schedule":
		path = "/v1/schedule"
	default:
		fmt.Fprintf(errOut, "sentinelload: unknown -endpoint %q\n", cfg.endpoint)
		return 2
	}

	bodies, err := encodeBodies(cfg)
	if err != nil {
		fmt.Fprintf(errOut, "sentinelload: %v\n", err)
		return 2
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()

	var results []result
	backendTally := map[string]int{}
	start := time.Now()
	var wg sync.WaitGroup
	targets := resolveTargets(cfg)
	if cfg.rps <= 0 && cfg.batch > 0 {
		// Closed loop, batched: conc raw-TCP workers each keep one wire
		// frame in flight, sharing the preserialized frame bytes. Workers
		// spread round-robin across the target list.
		hosts, err := hostsFromAddr(targets)
		if err != nil {
			fmt.Fprintf(errOut, "sentinelload: %v\n", err)
			return 2
		}
		frame := buildBatchFrame(cfg, bodies)
		workers := make([]*batchWorker, cfg.conc)
		for i := range workers {
			workers[i] = &batchWorker{host: hosts[i%len(hosts)], frame: frame, timeout: cfg.timeout, wid: i}
		}
		for w := 0; w < cfg.conc; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wk := workers[w]
				defer wk.close()
				for ctx.Err() == nil {
					wk.shoot()
				}
			}(w)
		}
		wg.Wait()
		for _, wk := range workers {
			results = append(results, wk.results...)
		}
	} else if cfg.rps <= 0 {
		// Closed loop: conc raw-TCP workers, one request in flight each, no
		// shared state between them until the merge below. Workers spread
		// round-robin across the target list.
		hosts, err := hostsFromAddr(targets)
		if err != nil {
			fmt.Fprintf(errOut, "sentinelload: %v\n", err)
			return 2
		}
		workers := make([]*worker, cfg.conc)
		for i := range workers {
			workers[i] = newWorker(hosts[i%len(hosts)], path, i, bodies, cfg.timeout)
		}
		for w := 0; w < cfg.conc; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wk := workers[w]
				defer wk.close()
				for i := w; ctx.Err() == nil; i += cfg.conc {
					wk.shoot(i % len(bodies))
				}
			}(w)
		}
		wg.Wait()
		for _, wk := range workers {
			results = append(results, wk.results...)
			for i, name := range wk.fleetNames {
				backendTally[name] += wk.fleetCounts[i]
			}
		}
	} else {
		// Open loop: fixed arrival schedule, capped at conc in flight
		// (arrivals beyond the cap are dropped and counted as errors —
		// the server would see them as queue pressure anyway). Arrivals
		// spawn goroutines, so recording goes through a mutex here; the
		// rate limiter, not the allocator, dominates this mode. Arrivals
		// spread round-robin across the target list.
		bases, err := baseURLs(targets)
		if err != nil {
			fmt.Fprintf(errOut, "sentinelload: %v\n", err)
			return 2
		}
		client := &http.Client{
			Timeout: cfg.timeout,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.conc * 2,
				MaxIdleConnsPerHost: cfg.conc * 2,
			},
		}
		var mu sync.Mutex
		record := func(r result) {
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		}
		var shoot func(i int)
		if cfg.batch > 0 {
			// Batched arrivals: each tick posts one /v1/batch frame; every
			// streamed element header becomes its own result.
			frame := buildBatchBody(cfg, bodies)
			shoot = func(i int) {
				batchURL := bases[i%len(bases)] + "/v1/batch"
				req, err := http.NewRequest(http.MethodPost, batchURL, bytes.NewReader(frame))
				if err != nil {
					record(result{wid: -1, seq: int32(i), err: true})
					return
				}
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set("X-Request-Id", fmt.Sprintf("o-%08d", i))
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					record(result{latency: time.Since(t0), wid: -1, seq: int32(i), err: true})
					return
				}
				if resp.StatusCode != http.StatusOK {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
					record(result{latency: time.Since(t0), status: resp.StatusCode, wid: -1, seq: int32(i)})
					return
				}
				err = drainBatchStream(resp.Body, t0, func(status int, lat time.Duration) {
					record(result{latency: lat, status: status, wid: -1, seq: int32(i)})
				})
				resp.Body.Close()
				if err != nil {
					record(result{latency: time.Since(t0), wid: -1, seq: int32(i), err: true})
				}
			}
		} else {
			shoot = func(i int) {
				body := bodies[i%len(bodies)]
				req, err := http.NewRequest(http.MethodPost, bases[i%len(bases)]+path, bytes.NewReader(body))
				if err != nil {
					record(result{wid: -1, seq: int32(i), err: true})
					return
				}
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set("X-Request-Id", fmt.Sprintf("o-%08d", i))
				t0 := time.Now()
				resp, err := client.Do(req)
				lat := time.Since(t0)
				if err != nil {
					record(result{latency: lat, wid: -1, seq: int32(i), err: true})
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
				resp.Body.Close()
				record(result{latency: lat, status: resp.StatusCode, wid: -1, seq: int32(i)})
			}
		}
		sem := make(chan struct{}, cfg.conc)
		interval := time.Duration(float64(time.Second) / cfg.rps)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		i := 0
	loop:
		for {
			select {
			case <-ctx.Done():
				break loop
			case <-ticker.C:
				select {
				case sem <- struct{}{}:
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						defer func() { <-sem }()
						shoot(i)
					}(i)
				default:
					record(result{err: true}) // in-flight cap exceeded
				}
				i++
			}
		}
		wg.Wait()
	}
	elapsed := time.Since(start)
	dispPath := path
	if cfg.batch > 0 {
		if cfg.rps <= 0 {
			dispPath = "wire " + cfg.endpoint
		} else {
			dispPath = "/v1/batch (" + cfg.endpoint + ")"
		}
	}
	report(results, elapsed, cfg.rps, cfg.conc, cfg.batch, dispPath, out)
	reportBackends(backendTally, out)
	if cfg.slowest > 0 {
		reportSlowest(results, cfg.slowest, out)
	}

	ok, total := tally(results)
	achieved := float64(ok) / elapsed.Seconds()
	if ok < total || achieved < cfg.minRPS {
		return 1
	}
	return 0
}

func tally(results []result) (ok, total int) {
	for _, r := range results {
		if !r.err && r.status == http.StatusOK {
			ok++
		}
	}
	return ok, len(results)
}

func report(results []result, elapsed time.Duration, rps float64, conc, batch int, path string, w io.Writer) {
	mode := fmt.Sprintf("closed loop, %d workers", conc)
	if rps > 0 {
		mode = fmt.Sprintf("open loop, target %.0f req/s, cap %d in flight", rps, conc)
	}
	if batch > 0 {
		mode += fmt.Sprintf(", batch=%d", batch)
	}
	fmt.Fprintf(w, "sentinelload: %s for %.1fs (%s)\n", path, elapsed.Seconds(), mode)

	byStatus := map[int]int{}
	netErrs := 0
	var lats []time.Duration
	for _, r := range results {
		if r.err {
			netErrs++
			continue
		}
		byStatus[r.status]++
		if r.status == http.StatusOK {
			lats = append(lats, r.latency)
		}
	}
	var statuses []int
	for s := range byStatus {
		statuses = append(statuses, s)
	}
	sort.Ints(statuses)
	var parts []string
	for _, s := range statuses {
		parts = append(parts, fmt.Sprintf("%d:%d", s, byStatus[s]))
	}
	if netErrs > 0 {
		parts = append(parts, fmt.Sprintf("net-error:%d", netErrs))
	}
	fmt.Fprintf(w, "requests:   %d total (%s)\n", len(results), strings.Join(parts, " "))
	fmt.Fprintf(w, "throughput: %.1f req/s ok\n", float64(len(lats))/elapsed.Seconds())
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	q := func(p float64) time.Duration {
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	fmt.Fprintf(w, "latency:    mean=%s p50=%s p90=%s p95=%s p99=%s max=%s\n",
		round(sum/time.Duration(len(lats))), round(q(0.50)), round(q(0.90)),
		round(q(0.95)), round(q(0.99)), round(lats[len(lats)-1]))
}

// reportBackends summarizes who answered when the target was a
// sentinelfront router: per-backend response counts from the X-Fleet-Backend
// header, with front-cache hits ("cache") broken out as a hit ratio. Silent
// when the header never appeared (a plain sentineld target).
func reportBackends(tally map[string]int, w io.Writer) {
	if len(tally) == 0 {
		return
	}
	var names []string
	total := 0
	for name, n := range tally {
		names = append(names, name)
		total += n
	}
	sort.Strings(names)
	var parts []string
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s:%d", name, tally[name]))
	}
	fmt.Fprintf(w, "backends:   %s\n", strings.Join(parts, " "))
	if hits := tally["cache"]; hits > 0 {
		fmt.Fprintf(w, "cache:      %d of %d router answers from the front cache (%.1f%% hit ratio)\n",
			hits, total, 100*float64(hits)/float64(total))
	}
}

// reportSlowest lists the n slowest completed requests with the request IDs
// they carried — the handle for looking them up in the server's flight
// recorder (/debug/requests) or access log.
func reportSlowest(results []result, n int, w io.Writer) {
	done := make([]result, 0, len(results))
	for _, r := range results {
		if !r.err {
			done = append(done, r)
		}
	}
	if len(done) == 0 {
		return
	}
	sort.Slice(done, func(i, j int) bool { return done[i].latency > done[j].latency })
	if n > len(done) {
		n = len(done)
	}
	fmt.Fprintf(w, "slowest %d:\n", n)
	for _, r := range done[:n] {
		fmt.Fprintf(w, "  %10s  status=%d  id=%s\n", round(r.latency), r.status, r.requestID())
	}
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }
