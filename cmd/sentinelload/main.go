// Command sentinelload is the load generator for sentineld: it drives
// /v1/simulate (or /v1/schedule) with a mixed workload profile and reports
// throughput and a latency histogram.
//
//	sentinelload -addr http://localhost:8649 -duration 10s -c 8
//	sentinelload -rps 500 -duration 30s -workloads cmp,wc,grep,matrix300
//
// Two driving modes:
//
//   - closed loop (default): -c workers each keep exactly one request in
//     flight, so offered load adapts to service rate — the mode for "how
//     fast can it go".
//   - open loop (-rps > 0): requests start on a fixed schedule regardless
//     of completions (up to -c concurrent), so queueing delay is visible —
//     the mode for "what does p99 look like at this arrival rate".
//
// Requests cycle deterministically through the -workloads list. The exit
// code is nonzero when any request failed or the achieved throughput fell
// below -min-rps (the CI smoke gate).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

type result struct {
	latency time.Duration
	status  int
	err     bool
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8649", "base URL of the sentineld server")
	duration := flag.Duration("duration", 10*time.Second, "how long to drive load")
	conc := flag.Int("c", 8, "concurrency: closed-loop workers, or the open-loop in-flight cap")
	rps := flag.Float64("rps", 0, "open-loop target arrival rate in req/s (0 = closed loop)")
	workloads := flag.String("workloads", "cmp,wc,grep,eqntott", "comma-separated workload mix, cycled per request")
	model := flag.String("model", "sentinel+stores", "speculation model for every request")
	width := flag.Int("width", 8, "issue width for every request")
	endpoint := flag.String("endpoint", "simulate", "endpoint to drive: simulate or schedule")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request client timeout")
	minRPS := flag.Float64("min-rps", 0, "exit nonzero when achieved req/s falls below this")
	flag.Parse()

	var path string
	switch *endpoint {
	case "simulate":
		path = "/v1/simulate"
	case "schedule":
		path = "/v1/schedule"
	default:
		fmt.Fprintf(os.Stderr, "sentinelload: unknown -endpoint %q\n", *endpoint)
		os.Exit(2)
	}
	url := strings.TrimSuffix(*addr, "/") + path

	// One request body per workload, built up front.
	var bodies [][]byte
	names := strings.Split(*workloads, ",")
	for _, name := range names {
		body, err := json.Marshal(map[string]any{
			"workload": strings.TrimSpace(name),
			"model":    *model,
			"width":    *width,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sentinelload: %v\n", err)
			os.Exit(2)
		}
		bodies = append(bodies, body)
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *conc * 2,
			MaxIdleConnsPerHost: *conc * 2,
		},
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	var (
		mu      sync.Mutex
		results []result
	)
	record := func(r result) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	}
	shoot := func(i int) {
		body := bodies[i%len(bodies)]
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		lat := time.Since(t0)
		if err != nil {
			record(result{latency: lat, err: true})
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		resp.Body.Close()
		record(result{latency: lat, status: resp.StatusCode})
	}

	start := time.Now()
	var wg sync.WaitGroup
	if *rps <= 0 {
		// Closed loop: conc workers, one request in flight each.
		for w := 0; w < *conc; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; ctx.Err() == nil; i += *conc {
					shoot(i)
				}
			}(w)
		}
	} else {
		// Open loop: fixed arrival schedule, capped at conc in flight
		// (arrivals beyond the cap are dropped and counted as errors —
		// the server would see them as queue pressure anyway).
		sem := make(chan struct{}, *conc)
		interval := time.Duration(float64(time.Second) / *rps)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		i := 0
	loop:
		for {
			select {
			case <-ctx.Done():
				break loop
			case <-ticker.C:
				select {
				case sem <- struct{}{}:
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						defer func() { <-sem }()
						shoot(i)
					}(i)
				default:
					record(result{err: true}) // in-flight cap exceeded
				}
				i++
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	report(results, elapsed, *rps, *conc, path, os.Stdout)

	ok, total := tally(results)
	achieved := float64(ok) / elapsed.Seconds()
	if ok < total || achieved < *minRPS {
		os.Exit(1)
	}
}

func tally(results []result) (ok, total int) {
	for _, r := range results {
		if !r.err && r.status == http.StatusOK {
			ok++
		}
	}
	return ok, len(results)
}

func report(results []result, elapsed time.Duration, rps float64, conc int, path string, w io.Writer) {
	mode := fmt.Sprintf("closed loop, %d workers", conc)
	if rps > 0 {
		mode = fmt.Sprintf("open loop, target %.0f req/s, cap %d in flight", rps, conc)
	}
	fmt.Fprintf(w, "sentinelload: %s for %.1fs (%s)\n", path, elapsed.Seconds(), mode)

	byStatus := map[int]int{}
	netErrs := 0
	var lats []time.Duration
	for _, r := range results {
		if r.err {
			netErrs++
			continue
		}
		byStatus[r.status]++
		if r.status == http.StatusOK {
			lats = append(lats, r.latency)
		}
	}
	var statuses []int
	for s := range byStatus {
		statuses = append(statuses, s)
	}
	sort.Ints(statuses)
	var parts []string
	for _, s := range statuses {
		parts = append(parts, fmt.Sprintf("%d:%d", s, byStatus[s]))
	}
	if netErrs > 0 {
		parts = append(parts, fmt.Sprintf("net-error:%d", netErrs))
	}
	fmt.Fprintf(w, "requests:   %d total (%s)\n", len(results), strings.Join(parts, " "))
	fmt.Fprintf(w, "throughput: %.1f req/s ok\n", float64(len(lats))/elapsed.Seconds())
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	q := func(p float64) time.Duration {
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	fmt.Fprintf(w, "latency:    mean=%s p50=%s p90=%s p95=%s p99=%s max=%s\n",
		round(sum/time.Duration(len(lats))), round(q(0.50)), round(q(0.90)),
		round(q(0.95)), round(q(0.99)), round(lats[len(lats)-1]))
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }
