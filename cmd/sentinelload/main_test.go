package main

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sentinel/internal/server"
)

// countingListener wraps a net.Listener and counts accepted connections —
// the observable difference between keep-alive reuse (a handful of dials)
// and a per-request dial storm (hundreds).
type countingListener struct {
	net.Listener
	accepted atomic.Int64
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.accepted.Add(1)
	}
	return c, err
}

// startServer brings up a real sentineld serving stack on a counting
// listener and returns its base URL plus the listener for inspection.
func startServer(t *testing.T) (string, *countingListener) {
	t.Helper()
	srv := server.New(server.Config{Workers: 1})
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := &countingListener{Listener: raw}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { httpSrv.Close() })
	return "http://" + ln.Addr().String(), ln
}

// TestClosedLoopKeepAlive drives the closed loop against a real TCP server
// and asserts connections are reused: with w workers the client needs at
// most a few connections, never one per request.
func TestClosedLoopKeepAlive(t *testing.T) {
	addr, ln := startServer(t)
	const workers = 4
	cfg := config{
		addr:      addr,
		duration:  500 * time.Millisecond,
		conc:      workers,
		workloads: "cmp,wc",
		model:     "sentinel+stores",
		width:     8,
		endpoint:  "simulate",
		timeout:   10 * time.Second,
	}
	var out strings.Builder
	if code := run(cfg, &out, &out); code != 0 {
		t.Fatalf("run exited %d:\n%s", code, out.String())
	}
	report := out.String()
	if !strings.Contains(report, "throughput:") {
		t.Fatalf("report missing throughput line:\n%s", report)
	}

	// Each raw worker dials exactly once and keeps the connection for its
	// whole run (redials happen only after errors, and the run reported
	// none); anywhere near per-request dialing would be hundreds.
	if got := ln.accepted.Load(); got != workers {
		t.Fatalf("accepted %d connections for %d workers; requests are not reusing connections", got, workers)
	}
}

// TestClosedLoopBackendTally: responses carrying X-Fleet-Backend (a router
// target) are tallied per backend in the summary, with front-cache hits
// broken out as a hit ratio.
func TestClosedLoopBackendTally(t *testing.T) {
	var n atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) //nolint:errcheck
		// First answer "from a backend", every repeat "from the cache" — the
		// shape a warmed router produces.
		if n.Add(1) == 1 {
			w.Header().Set("X-Fleet-Backend", "127.0.0.1:9999")
		} else {
			w.Header().Set("X-Fleet-Backend", "cache")
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write([]byte(`{"cycles":1}` + "\n")) //nolint:errcheck
	}))
	t.Cleanup(stub.Close)
	cfg := config{
		addr:      stub.URL,
		duration:  300 * time.Millisecond,
		conc:      1,
		workloads: "cmp",
		model:     "sentinel",
		width:     4,
		endpoint:  "simulate",
		timeout:   10 * time.Second,
	}
	var out strings.Builder
	if code := run(cfg, &out, &out); code != 0 {
		t.Fatalf("run exited %d:\n%s", code, out.String())
	}
	report := out.String()
	if !strings.Contains(report, "backends:") || !strings.Contains(report, "127.0.0.1:9999:1") {
		t.Fatalf("report missing the per-backend tally:\n%s", report)
	}
	if !strings.Contains(report, "cache:") || !strings.Contains(report, "hit ratio") {
		t.Fatalf("report missing the cache hit ratio:\n%s", report)
	}
}

// TestBackendTallySilentWithoutHeader: a plain sentineld target (no
// X-Fleet-Backend header) keeps the summary unchanged.
func TestBackendTallySilentWithoutHeader(t *testing.T) {
	addr, _ := startServer(t)
	cfg := config{
		addr:      addr,
		duration:  200 * time.Millisecond,
		conc:      1,
		workloads: "cmp",
		model:     "sentinel",
		width:     4,
		endpoint:  "simulate",
		timeout:   10 * time.Second,
	}
	var out strings.Builder
	if code := run(cfg, &out, &out); code != 0 {
		t.Fatalf("run exited %d:\n%s", code, out.String())
	}
	if strings.Contains(out.String(), "backends:") {
		t.Fatalf("plain sentineld run printed a backend tally:\n%s", out.String())
	}
}

// TestOpenLoopRuns exercises the rate-limited path end to end.
func TestOpenLoopRuns(t *testing.T) {
	addr, _ := startServer(t)
	cfg := config{
		addr:      addr,
		duration:  400 * time.Millisecond,
		conc:      8,
		rps:       100,
		workloads: "cmp",
		model:     "sentinel",
		width:     4,
		endpoint:  "simulate",
		timeout:   10 * time.Second,
	}
	var out strings.Builder
	if code := run(cfg, &out, &out); code != 0 {
		t.Fatalf("run exited %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "open loop") {
		t.Fatalf("report does not mention open loop:\n%s", out.String())
	}
}

// startBatchServer brings up the serving stack behind a protocol-sniffing
// listener, exactly as sentineld deploys it: one port, both protocols.
func startBatchServer(t *testing.T) string {
	t.Helper()
	srv := server.New(server.Config{Workers: 1})
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpLn := srv.SniffWire(raw)
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(httpLn) //nolint:errcheck
	t.Cleanup(func() { httpSrv.Close() })
	return "http://" + raw.Addr().String()
}

// TestClosedLoopBatch drives binary wire frames end to end: every element
// completes, accounting is per element, and the report names the mode.
func TestClosedLoopBatch(t *testing.T) {
	addr := startBatchServer(t)
	cfg := config{
		addr:      addr,
		duration:  400 * time.Millisecond,
		conc:      2,
		workloads: "cmp,wc",
		model:     "sentinel",
		width:     8,
		endpoint:  "simulate",
		timeout:   10 * time.Second,
		batch:     8,
	}
	var out strings.Builder
	if code := run(cfg, &out, &out); code != 0 {
		t.Fatalf("run exited %d:\n%s", code, out.String())
	}
	report := out.String()
	for _, want := range []string{"wire simulate", "batch=8", "throughput:"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

// TestOpenLoopBatch posts /v1/batch frames on the arrival schedule and
// parses the streamed element headers.
func TestOpenLoopBatch(t *testing.T) {
	addr := startBatchServer(t)
	cfg := config{
		addr:      addr,
		duration:  400 * time.Millisecond,
		conc:      4,
		rps:       50,
		workloads: "cmp",
		model:     "sentinel",
		width:     4,
		endpoint:  "simulate",
		timeout:   10 * time.Second,
		batch:     4,
	}
	var out strings.Builder
	if code := run(cfg, &out, &out); code != 0 {
		t.Fatalf("run exited %d:\n%s", code, out.String())
	}
	report := out.String()
	for _, want := range []string{"/v1/batch (simulate)", "batch=4", "open loop"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

// TestRunRejectsUnknownEndpoint covers the config validation exit path.
func TestRunRejectsUnknownEndpoint(t *testing.T) {
	var out strings.Builder
	if code := run(config{endpoint: "nope"}, io.Discard, &out); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
	if !strings.Contains(out.String(), "unknown -endpoint") {
		t.Fatalf("missing error message, got %q", out.String())
	}
}

// TestWorkerBodyReuse pins the raw client against a real net/http server:
// the preserialized request bytes are written verbatim every shot, the
// server sees identical bodies both times, and the worker parses the
// framed responses and keeps its one connection.
func TestWorkerBodyReuse(t *testing.T) {
	body := []byte(`{"workload":"cmp"}`)
	seen := make(chan string, 4)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		seen <- string(b)
		w.Write([]byte(`{}`)) //nolint:errcheck
	}))
	defer ts.Close()

	host := strings.TrimPrefix(ts.URL, "http://")
	wk := newWorker(host, "/v1/simulate", 0, [][]byte{body}, 5*time.Second)
	defer wk.close()
	wk.shoot(0)
	wk.shoot(0)
	for i := 0; i < 2; i++ {
		if got := <-seen; got != string(body) {
			t.Fatalf("send %d delivered %q, want %q (request bytes corrupted?)", i, got, body)
		}
	}
	if len(wk.results) != 2 {
		t.Fatalf("recorded %d results, want 2", len(wk.results))
	}
	for i, r := range wk.results {
		if r.err || r.status != http.StatusOK {
			t.Fatalf("result %d = %+v, want 200 ok", i, r)
		}
	}
	if wk.conn == nil {
		t.Fatal("worker dropped its connection after framed 200 responses")
	}
}

// TestWorkerRequestIDs: every shot stamps a fresh sequence number into the
// preserialized X-Request-Id header in place, so the server can tie each
// request to the load report's slowest list without the client allocating.
func TestWorkerRequestIDs(t *testing.T) {
	seen := make(chan string, 4)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) //nolint:errcheck
		seen <- r.Header.Get("X-Request-Id")
		w.Write([]byte(`{}`)) //nolint:errcheck
	}))
	defer ts.Close()
	host := strings.TrimPrefix(ts.URL, "http://")
	wk := newWorker(host, "/v1/simulate", 7, [][]byte{[]byte(`{"workload":"cmp"}`)}, 5*time.Second)
	defer wk.close()
	wk.shoot(0)
	wk.shoot(0)
	for i, want := range []string{"w007-00000001", "w007-00000002"} {
		if got := <-seen; got != want {
			t.Fatalf("request %d carried id %q, want %q", i, got, want)
		}
	}
	for i, r := range wk.results {
		if want := []string{"w007-00000001", "w007-00000002"}[i]; r.requestID() != want {
			t.Fatalf("result %d id = %q, want %q", i, r.requestID(), want)
		}
	}
}

// TestReportSlowest covers the -slowest dump: ordered by latency, IDs intact.
func TestReportSlowest(t *testing.T) {
	results := []result{
		{latency: 2 * time.Millisecond, status: 200, wid: 1, seq: 5},
		{latency: 9 * time.Millisecond, status: 504, wid: -1, seq: 3},
		{latency: 4 * time.Millisecond, status: 200, wid: 0, seq: 8},
		{latency: time.Millisecond, err: true}, // errors have no response to rank
	}
	var out strings.Builder
	reportSlowest(results, 2, &out)
	got := out.String()
	if !strings.Contains(got, "slowest 2:") {
		t.Fatalf("missing header:\n%s", got)
	}
	first := strings.Index(got, "id=o-00000003")
	second := strings.Index(got, "id=w000-00000008")
	if first < 0 || second < 0 || first > second {
		t.Fatalf("slowest list wrong order or missing IDs:\n%s", got)
	}
	if strings.Contains(got, "w001-00000005") {
		t.Fatalf("third-slowest leaked into a 2-entry list:\n%s", got)
	}
}

// TestWorkerParsesErrorStatus: non-200 responses are framed and recorded
// without poisoning the connection.
func TestWorkerParsesErrorStatus(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"nope"}`, http.StatusNotFound)
	}))
	defer ts.Close()
	host := strings.TrimPrefix(ts.URL, "http://")
	wk := newWorker(host, "/v1/simulate", 0, [][]byte{[]byte(`{}`)}, 5*time.Second)
	defer wk.close()
	wk.shoot(0)
	wk.shoot(0)
	if len(wk.results) != 2 {
		t.Fatalf("recorded %d results, want 2", len(wk.results))
	}
	for i, r := range wk.results {
		if r.err || r.status != http.StatusNotFound {
			t.Fatalf("result %d = %+v, want status 404", i, r)
		}
	}
	if wk.conn == nil {
		t.Fatal("worker dropped its connection on a framed error response")
	}
}

// TestHostFromAddr covers the base-URL-to-dial-target reduction, IPv6
// literals in every spelling included.
func TestHostFromAddr(t *testing.T) {
	for _, tc := range []struct {
		in, want string
		wantErr  bool
	}{
		{in: "http://127.0.0.1:8649", want: "127.0.0.1:8649"},
		{in: "127.0.0.1:8649", want: "127.0.0.1:8649"},
		{in: "http://example.com", want: "example.com:80"},
		{in: "https://example.com", wantErr: true},
		// IPv6: bracketed with port, bracketed bare, raw — all must come out
		// as a dialable [host]:port, never double-bracketed.
		{in: "http://[::1]:8649", want: "[::1]:8649"},
		{in: "[::1]:8649", want: "[::1]:8649"},
		{in: "http://[::1]", want: "[::1]:80"},
		{in: "[::1]", want: "[::1]:80"},
		{in: "::1", want: "[::1]:80"},
		{in: "[2001:db8::7]:8650", want: "[2001:db8::7]:8650"},
		{in: "2001:db8::7", want: "[2001:db8::7]:80"},
	} {
		got, err := hostFromAddr(tc.in)
		if tc.wantErr != (err != nil) {
			t.Errorf("hostFromAddr(%q) error = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if !tc.wantErr && got != tc.want {
			t.Errorf("hostFromAddr(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestHostsFromAddr covers the comma-separated target list: every entry
// reduces independently, whitespace is tolerated, one bad entry fails the
// whole list.
func TestHostsFromAddr(t *testing.T) {
	got, err := hostsFromAddr("http://a:8649, b:8651 ,[::1],c")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a:8649", "b:8651", "[::1]:80", "c:80"}
	if len(got) != len(want) {
		t.Fatalf("hostsFromAddr = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hostsFromAddr[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if _, err := hostsFromAddr("a:8649,https://b"); err == nil {
		t.Fatal("https entry in the list did not fail")
	}
	if _, err := hostsFromAddr(" , "); err == nil {
		t.Fatal("empty list did not fail")
	}
}

// TestBaseURLs covers the open loop's target normalization.
func TestBaseURLs(t *testing.T) {
	got, err := baseURLs("http://a:8649/,b:8651")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:8649", "http://b:8651"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("baseURLs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestResolveTargets pins the flag precedence: -targets beats -addr, and
// -fleet only redirects the untouched default.
func TestResolveTargets(t *testing.T) {
	if got := resolveTargets(config{addr: defaultAddr, targets: "x:1,y:2"}); got != "x:1,y:2" {
		t.Fatalf("targets not preferred: %q", got)
	}
	if got := resolveTargets(config{addr: defaultAddr, fleet: true}); got != defaultFleetAddr {
		t.Fatalf("-fleet did not redirect the default addr: %q", got)
	}
	if got := resolveTargets(config{addr: "http://x:9", fleet: true}); got != "http://x:9" {
		t.Fatalf("-fleet overrode an explicit -addr: %q", got)
	}
	if got := resolveTargets(config{addr: "http://x:9"}); got != "http://x:9" {
		t.Fatalf("plain addr mangled: %q", got)
	}
}
